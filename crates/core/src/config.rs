//! Framework configuration.
//!
//! The paper stresses that "users can control the rich provenance features
//! through a configuration file without manually modifying their source
//! code" (§6.4, Table 4). `ProvIoConfig` is that knob set; a tiny
//! INI-style parser loads it from a file on the simulated file system.

use provio_model::{ClassSelector, TrackItem};
use provio_simrt::DetRng;
use std::sync::Arc;

/// On-disk RDF format of per-process sub-graph files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RdfFormat {
    /// Subject-grouped Turtle, the paper's default.
    Turtle,
    /// Line-oriented N-Triples (append-friendly; used for periodic mode).
    NTriples,
}

impl RdfFormat {
    pub fn extension(self) -> &'static str {
        match self {
            RdfFormat::Turtle => "ttl",
            RdfFormat::NTriples => "nt",
        }
    }
}

/// Retry/backoff policy for durable store writes (see
/// `crate::store::ProvenanceStore`). A flush is attempted up to
/// `max_attempts` times; between attempts the writer backs off
/// exponentially starting from `backoff_ns`, charged to the issuing
/// rank's virtual clock when the write is synchronous.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per flush (1 = fail fast, no retry).
    pub max_attempts: u32,
    /// Base backoff before the first retry; doubles per retry.
    pub backoff_ns: u64,
    /// Decorrelate retry delays across ranks (`retry_jitter` ini knob).
    /// When a shared episode — one sick OST returning ENOSPC to every
    /// rank at once — trips N writers together, pure exponential backoff
    /// has them all retry in lockstep at the same instants, re-creating
    /// the overload they are backing off from. With jitter on, each delay
    /// is drawn from `[backoff_ns, 3 * previous_delay)` (AWS-style
    /// "decorrelated jitter") seeded per store, so retry times spread out
    /// while the mean still grows exponentially.
    pub jitter: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_ns: 1_000_000,
            jitter: false,
        }
    }
}

impl RetryPolicy {
    /// Backoff before the retry that follows failure number `failures`
    /// (1-based): `backoff_ns * 2^(failures-1)`, saturating.
    pub fn backoff_for(self, failures: u32) -> u64 {
        let shift = failures.saturating_sub(1).min(20);
        self.backoff_ns.saturating_mul(1u64 << shift)
    }

    /// The largest delay either backoff flavor will produce (the
    /// exponential curve's saturation point).
    pub fn backoff_cap(self) -> u64 {
        self.backoff_ns.saturating_mul(1 << 20)
    }

    /// Decorrelated-jitter delay: uniform in `[backoff_ns, 3 * prev)`,
    /// clamped to [`Self::backoff_cap`], where `prev` is the delay used
    /// before the previous retry (start it at `backoff_ns`). Each store
    /// draws from its own seeded stream, so two ranks tripped by the same
    /// episode stop retrying in lockstep while the expected delay still
    /// grows geometrically.
    pub fn jittered_backoff(self, prev: u64, rng: &mut DetRng) -> u64 {
        let lo = self.backoff_ns.max(1);
        let hi = prev
            .saturating_mul(3)
            .clamp(lo.saturating_add(1), self.backoff_cap().max(lo + 1));
        lo + rng.below(hi - lo)
    }
}

/// What an asynchronous store does when its bounded intake queue is full
/// (see `crate::store::ProvenanceStore`). The unbounded queue this replaces
/// let a fast producer balloon memory without limit; both policies here
/// keep memory bounded and differ only in who pays:
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// The pushing rank waits until the writers catch up — backpressure on
    /// the workflow's critical path, no provenance lost.
    #[default]
    Block,
    /// The batch is dropped and counted (`TrackSummary::shed_batches` /
    /// `shed_triples`) — the workflow never stalls, provenance is lossy
    /// under overload but *honestly* lossy.
    Shed,
}

/// When per-process sub-graphs are pushed to the store (paper §4.2: "the
/// serialization operation may be triggered either periodically or by the
/// end of the workflow").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SerializationPolicy {
    /// Serialize once, when the tracker is finished.
    AtEnd,
    /// Push deltas to the (asynchronous) store writer every `n` records.
    EveryRecords(usize),
}

/// Full framework configuration.
#[derive(Debug, Clone)]
pub struct ProvIoConfig {
    /// Which sub-classes to track (the user-engine selector).
    pub selector: ClassSelector,
    /// Directory on the parallel file system for per-process sub-graphs.
    pub store_dir: String,
    pub policy: SerializationPolicy,
    pub format: RdfFormat,
    /// Serialize asynchronously on a background thread (paper default).
    /// `false` is the synchronous ablation.
    pub async_store: bool,
    /// Workflow name, recorded as the `Type` extensible node's label.
    pub workflow_type: Option<String>,
    /// Modeled per-record store latency, charged to the workflow clock on
    /// every tracked event *in addition to* the tracker's real measured
    /// time. The paper attributes most tracking overhead "to the latency of
    /// Redland" (§6.2); our in-memory insert is far faster than Redland
    /// librdf's, so this constant restores the paper's cost ratio. Set to 0
    /// to measure this implementation's native overhead (the
    /// `tracking_micro` bench does both).
    pub record_latency_ns: u64,
    /// Retry/backoff behavior of the durable store writer.
    pub retry: RetryPolicy,
    /// Persist periodic flushes as append-only delta segments next to the
    /// committed snapshot instead of rewriting the whole sub-graph file
    /// (`[store] delta_segments`). `false` is the legacy full-rewrite
    /// ablation.
    pub delta_segments: bool,
    /// Fold delta segments into a fresh snapshot every this many appends
    /// (`[store] compact_every`; 0 = compact only on finish).
    pub compact_every: u32,
    /// Capacity of the async store's intake queue, in pushed batches
    /// (`[store] queue_capacity`; 0 = unbounded, the legacy behavior).
    pub queue_capacity: u64,
    /// What happens when the intake queue is full
    /// (`[store] overload_policy = block | shed`).
    pub overload: OverloadPolicy,
    /// Trip the store's circuit breaker after this many *consecutive*
    /// failed flushes (`[store] breaker_threshold`; 0 disables the
    /// breaker). While open, periodic flushes are skipped instead of
    /// hammering a failing backend; triples stay queued in memory above the
    /// watermark, so nothing is lost when the breaker closes again.
    pub breaker_threshold: u32,
    /// How long (virtual ns) an open breaker waits before letting one
    /// half-open probe flush through (`[store] breaker_backoff_ns`).
    pub breaker_backoff_ns: u64,
    /// Write sub-graph files in the checksummed framing
    /// ([`crate::frame`]): per-file identity header, per-batch CRC32
    /// frames, and a footer hash chained across the store's commits
    /// (`[store] checksum_format`). Framed files stay readable by legacy
    /// parsers (every frame line is an RDF comment); the merge verifies
    /// them batch by batch. `false` (the default) writes the legacy
    /// unframed format.
    pub checksum_format: bool,
    /// Keep a per-process write-ahead journal next to the store file
    /// (`[store] wal`). Tracked triples are appended to the journal in
    /// group commits of `wal_group` records *before* they are visible only
    /// in memory awaiting the next flush; after a crash the merge replays
    /// the journal above the last committed snapshot/segment watermark, so
    /// loss per crashed rank is bounded by `wal_group` records instead of
    /// "everything since the last flush". `false` (the default) preserves
    /// the flush-boundary-only durability of earlier revisions.
    pub wal: bool,
    /// Records per WAL group commit (`[store] wal_group`; must be ≥ 1).
    /// 1 = commit every record (strongest bound, highest overhead).
    pub wal_group: u32,
    /// Stream flushed batches to a live aggregator over the simulated
    /// interconnect (`[net] net`). Delivery is at-least-once (ack/timeout
    /// with the store's decorrelated-jitter backoff) and the aggregator
    /// dedups by (rank, seq) watermark, so a lossy fabric costs retries,
    /// never correctness. Requires `wal`: an ack is only issued for
    /// records already journal-durable on the rank, which is what lets
    /// an aggregator crash re-sync from the rank-local WAL/segments with
    /// zero acked-record loss. `false` (the default) keeps the post-hoc
    /// merge-only collection of earlier revisions.
    pub net: bool,
    /// Virtual nanoseconds a rank-side client waits for an ack before
    /// retransmitting (`[net] net_timeout_ns`; must be ≥ 1 — a zero
    /// timeout would spin the retry loop without ever advancing the
    /// virtual clock past a partition window).
    pub net_timeout_ns: u64,
    /// Bound on the rank-side send buffer, in batches (`[net]
    /// net_buffer`; 0 = unbounded). When the buffer is full the
    /// `overload_policy` decides: `block` applies backpressure (the rank
    /// pumps the fabric until space frees), `shed` drops the new batch
    /// from the *stream only* — it stays in the durable store, so the
    /// post-crash resync still converges.
    pub net_buffer: u64,
    /// Maintain XOR parity over committed artifacts (`[store] parity`):
    /// every `parity_group` commits the store seals a
    /// `<snapshot>.pNNNNNN.par` file from which `scrub` can reconstruct
    /// any single lost or rotted group member byte-identical. Requires
    /// `checksum_format` (parity groups are defined over framed commits).
    /// `false` (the default) keeps the detect-and-drop behavior.
    pub parity: bool,
    /// Committed artifacts per parity group (`[store] parity_group`; must
    /// be ≥ 1). 1 = every commit gets a parity twin (replication — full
    /// coverage, full write duplication); larger groups amortize the
    /// parity volume to ~1/N of committed bytes at a tolerance of one
    /// lost member per group.
    pub parity_group: u32,
    /// Worker threads for the post-run parallel merge (`[store]
    /// merge_threads`; 0 = size from `available_parallelism`). Hosts that
    /// report one core would otherwise degenerate `merge_directory` to a
    /// sequential loop.
    pub merge_threads: u32,
    /// Emit a signed run manifest (`<store_dir>/MANIFEST.provio`) at
    /// `finish_all` and chain its digest into the campaign ledger
    /// (`<store_dir>/CAMPAIGN.provio`) — the tamper-evidence layer on top
    /// of the (accident-evidence) checksummed format (`[store] manifest`).
    /// `false` (the default) leaves run directories unsigned; `verify`
    /// reports them `Unsigned` rather than erroring.
    pub manifest: bool,
    /// Key for the manifest's HMAC-SHA256 signature (`[store]
    /// manifest_key`). The default is deliberately insecure — a published
    /// constant — so that demos and tests work out of the box while any
    /// real deployment is forced to set its own; treat a run signed by the
    /// default key as integrity-checked, not authenticated.
    pub manifest_key: String,
    /// Evaluation budget for SPARQL queries run through the engine, in
    /// produced bindings/visited path nodes (`[query] query_budget`;
    /// 0 = unlimited). A runaway query over a corrupted graph terminates
    /// with `QueryError::BudgetExhausted` instead of spinning.
    pub query_budget: u64,
}

/// Default Redland-calibrated per-record latency (see
/// [`ProvIoConfig::record_latency_ns`]).
pub const DEFAULT_RECORD_LATENCY_NS: u64 = 2_000_000;

/// Default async intake-queue capacity, in batches (see
/// [`ProvIoConfig::queue_capacity`]). A batch is at most ~4096 records, so
/// this bounds per-store buffered memory while staying far above any rate
/// the shared writer pool cannot absorb in steady state.
pub const DEFAULT_QUEUE_CAPACITY: u64 = 1024;

/// Default open-breaker backoff (virtual ns) before a half-open probe (see
/// [`ProvIoConfig::breaker_backoff_ns`]): 100 ms of modeled time.
pub const DEFAULT_BREAKER_BACKOFF_NS: u64 = 100_000_000;

/// Default WAL group-commit size, in records (see
/// [`ProvIoConfig::wal_group`]). 64 matches the store's N-Triples batch
/// granularity: small enough that a crashed rank loses at most one short
/// burst of records, large enough to amortize the journal append.
pub const DEFAULT_WAL_GROUP: u32 = 64;

/// Default ack timeout for the streaming net client, in virtual ns (see
/// [`ProvIoConfig::net_timeout_ns`]): 10 ms of modeled time — several
/// round trips on the modeled fabric, short against partition episodes.
pub const DEFAULT_NET_TIMEOUT_NS: u64 = 10_000_000;

/// Default rank-side send-buffer bound, in batches (see
/// [`ProvIoConfig::net_buffer`]). 64 in-flight batches absorb a healthy
/// fabric's jitter while keeping a partitioned rank's buffered memory
/// bounded.
pub const DEFAULT_NET_BUFFER: u64 = 64;

/// Default manifest HMAC key (see [`ProvIoConfig::manifest_key`]): a
/// published constant, so signatures made with it prove integrity but not
/// authenticity.
pub const DEFAULT_MANIFEST_KEY: &str = "provio-insecure-default-key";

/// Default parity group width, in committed artifacts (see
/// [`ProvIoConfig::parity_group`]). 16 keeps the extra write volume near
/// 1/16 ≈ 6% of committed bytes while still tolerating one lost artifact
/// per sixteen commits; sweeps and tests narrow it for denser coverage.
pub const DEFAULT_PARITY_GROUP: u32 = 16;

impl Default for ProvIoConfig {
    fn default() -> Self {
        ProvIoConfig {
            selector: ClassSelector::all(),
            store_dir: "/provio".to_string(),
            policy: SerializationPolicy::AtEnd,
            format: RdfFormat::Turtle,
            async_store: true,
            workflow_type: None,
            record_latency_ns: DEFAULT_RECORD_LATENCY_NS,
            retry: RetryPolicy::default(),
            delta_segments: true,
            compact_every: crate::store::DEFAULT_COMPACT_EVERY,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            overload: OverloadPolicy::Block,
            breaker_threshold: 0,
            breaker_backoff_ns: DEFAULT_BREAKER_BACKOFF_NS,
            checksum_format: false,
            wal: false,
            wal_group: DEFAULT_WAL_GROUP,
            net: false,
            net_timeout_ns: DEFAULT_NET_TIMEOUT_NS,
            net_buffer: DEFAULT_NET_BUFFER,
            parity: false,
            parity_group: DEFAULT_PARITY_GROUP,
            merge_threads: 0,
            manifest: false,
            manifest_key: DEFAULT_MANIFEST_KEY.to_string(),
            query_budget: 0,
        }
    }
}

impl ProvIoConfig {
    pub fn with_selector(mut self, selector: ClassSelector) -> Self {
        self.selector = selector;
        self
    }

    pub fn with_store_dir(mut self, dir: impl Into<String>) -> Self {
        self.store_dir = dir.into();
        self
    }

    pub fn with_policy(mut self, policy: SerializationPolicy) -> Self {
        self.policy = policy;
        self
    }

    pub fn with_format(mut self, format: RdfFormat) -> Self {
        self.format = format;
        self
    }

    pub fn synchronous(mut self) -> Self {
        self.async_store = false;
        self
    }

    pub fn with_workflow_type(mut self, t: impl Into<String>) -> Self {
        self.workflow_type = Some(t.into());
        self
    }

    /// Override the modeled per-record store latency (0 disables it).
    pub fn with_record_latency_ns(mut self, ns: u64) -> Self {
        self.record_latency_ns = ns;
        self
    }

    /// Override the store writer's retry/backoff policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enable/disable delta-segment flushing (off = legacy full rewrite).
    pub fn with_delta_segments(mut self, enabled: bool) -> Self {
        self.delta_segments = enabled;
        self
    }

    /// Fold delta segments into a snapshot every `n` appends (0 = only on
    /// finish).
    pub fn with_compact_every(mut self, n: u32) -> Self {
        self.compact_every = n;
        self
    }

    /// Bound the async store's intake queue (`capacity` batches; 0 =
    /// unbounded) and pick the full-queue policy.
    pub fn with_queue(mut self, capacity: u64, policy: OverloadPolicy) -> Self {
        self.queue_capacity = capacity;
        self.overload = policy;
        self
    }

    /// Arm the store's circuit breaker: trip after `threshold` consecutive
    /// flush failures (0 disables), half-open probe after `backoff_ns`
    /// virtual nanoseconds.
    pub fn with_breaker(mut self, threshold: u32, backoff_ns: u64) -> Self {
        self.breaker_threshold = threshold;
        self.breaker_backoff_ns = backoff_ns;
        self
    }

    /// Write sub-graph files in the checksummed framing (off = legacy
    /// unframed format).
    pub fn with_checksums(mut self, enabled: bool) -> Self {
        self.checksum_format = enabled;
        self
    }

    /// Enable the write-ahead journal with the given group-commit size
    /// (`group` is clamped up to 1; see [`ProvIoConfig::wal_group`]).
    pub fn with_wal(mut self, enabled: bool, group: u32) -> Self {
        self.wal = enabled;
        self.wal_group = group.max(1);
        self
    }

    /// Enable live streaming to an aggregator with the given ack timeout
    /// (`timeout_ns` is clamped up to 1; see [`ProvIoConfig::net`]).
    /// Streaming rides on the journal, so callers should also arm `wal`
    /// — `from_ini` rejects the combination outright.
    pub fn with_net(mut self, enabled: bool, timeout_ns: u64) -> Self {
        self.net = enabled;
        self.net_timeout_ns = timeout_ns.max(1);
        self
    }

    /// Bound the rank-side send buffer, in batches (0 = unbounded; see
    /// [`ProvIoConfig::net_buffer`]).
    pub fn with_net_buffer(mut self, batches: u64) -> Self {
        self.net_buffer = batches;
        self
    }

    /// Enable parity protection with the given group width (`group` is
    /// clamped up to 1; see [`ProvIoConfig::parity_group`]). Parity is
    /// only meaningful over framed commits, so callers should also arm
    /// `checksum_format` — `from_ini` rejects the combination outright.
    pub fn with_parity(mut self, enabled: bool, group: u32) -> Self {
        self.parity = enabled;
        self.parity_group = group.max(1);
        self
    }

    /// Size the post-run merge worker pool (0 = automatic; see
    /// [`ProvIoConfig::merge_threads`]).
    pub fn with_merge_threads(mut self, threads: u32) -> Self {
        self.merge_threads = threads;
        self
    }

    /// Emit a signed run manifest + campaign ledger entry at `finish_all`.
    /// Implies nothing about `checksum_format` — but unframed files can
    /// only be anchored by a whole-file digest, so framed stores verify at
    /// batch granularity and legacy stores as opaque blobs.
    pub fn with_manifest(mut self, enabled: bool) -> Self {
        self.manifest = enabled;
        self
    }

    /// Set the manifest signing key (see [`ProvIoConfig::manifest_key`]).
    pub fn with_manifest_key(mut self, key: impl Into<String>) -> Self {
        self.manifest_key = key.into();
        self
    }

    /// Cap SPARQL evaluation work (0 = unlimited).
    pub fn with_query_budget(mut self, budget: u64) -> Self {
        self.query_budget = budget;
        self
    }

    pub fn shared(self) -> Arc<Self> {
        Arc::new(self)
    }

    /// Parse a configuration file (the "no source changes" interface).
    ///
    /// Recognized keys: `store_dir`, `policy` (`at_end` | `every:<n>`),
    /// `format` (`turtle` | `ntriples`), `async` (`true`/`false`),
    /// `delta_segments` (`true`/`false`), `compact_every` (`<n>`, 0 = only
    /// on finish), `queue_capacity` (`<n>` batches, 0 = unbounded),
    /// `overload_policy` (`block` | `shed`), `breaker_threshold` (`<n>`
    /// consecutive failures, 0 = disabled), `breaker_backoff_ns`,
    /// `checksum_format` (`true`/`false`, framed checksummed store files),
    /// `wal` (`true`/`false`, per-process write-ahead journal),
    /// `wal_group` (`<n>` records per WAL group commit, must be ≥ 1),
    /// `net` (`true`/`false`, stream flushed batches to a live
    /// aggregator; requires `wal`), `net_timeout_ns` (`<n>` virtual ns
    /// before retransmit, must be ≥ 1), `net_buffer` (`<n>` batches of
    /// rank-side send buffer, 0 = unbounded),
    /// `parity` (`true`/`false`, XOR parity over committed artifacts;
    /// requires `checksum_format`), `parity_group` (`<n>` commits per
    /// parity group, must be ≥ 1), `merge_threads` (`<n>` merge workers,
    /// 0 = automatic),
    /// `manifest` (`true`/`false`, signed run manifest + campaign ledger),
    /// `manifest_key` (HMAC key for manifest signatures),
    /// `query_budget` (`<n>` evaluation steps, 0 = unlimited),
    /// `workflow_type`, `preset` (one of the Table 3 presets),
    /// and `track`/`untrack` with a comma-separated item list
    /// (`file,dataset,attribute,duration,…`).
    pub fn from_ini(text: &str) -> Result<Self, String> {
        let mut cfg = ProvIoConfig::default();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with('[') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected key=value", lineno + 1))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "store_dir" => cfg.store_dir = value.to_string(),
                "record_latency_ns" => {
                    cfg.record_latency_ns = value
                        .parse()
                        .map_err(|_| format!("line {}: bad integer", lineno + 1))?
                }
                "retry_max_attempts" => {
                    cfg.retry.max_attempts = value
                        .parse()
                        .map_err(|_| format!("line {}: bad integer", lineno + 1))?
                }
                "retry_backoff_ns" => {
                    cfg.retry.backoff_ns = value
                        .parse()
                        .map_err(|_| format!("line {}: bad integer", lineno + 1))?
                }
                "retry_jitter" => {
                    cfg.retry.jitter = value
                        .parse()
                        .map_err(|_| format!("line {}: bad bool", lineno + 1))?
                }
                "delta_segments" => {
                    cfg.delta_segments = value
                        .parse()
                        .map_err(|_| format!("line {}: bad bool", lineno + 1))?
                }
                "compact_every" => {
                    cfg.compact_every = value
                        .parse()
                        .map_err(|_| format!("line {}: bad integer", lineno + 1))?
                }
                "queue_capacity" => {
                    cfg.queue_capacity = value
                        .parse()
                        .map_err(|_| format!("line {}: bad integer", lineno + 1))?
                }
                "overload_policy" => {
                    cfg.overload = match value {
                        "block" => OverloadPolicy::Block,
                        "shed" => OverloadPolicy::Shed,
                        _ => return Err(format!("line {}: unknown overload policy", lineno + 1)),
                    }
                }
                "breaker_threshold" => {
                    cfg.breaker_threshold = value
                        .parse()
                        .map_err(|_| format!("line {}: bad integer", lineno + 1))?
                }
                "breaker_backoff_ns" => {
                    cfg.breaker_backoff_ns = value
                        .parse()
                        .map_err(|_| format!("line {}: bad integer", lineno + 1))?
                }
                "checksum_format" => {
                    cfg.checksum_format = value
                        .parse()
                        .map_err(|_| format!("line {}: bad bool", lineno + 1))?
                }
                "wal" => {
                    cfg.wal = value
                        .parse()
                        .map_err(|_| format!("line {}: bad bool", lineno + 1))?
                }
                "wal_group" => {
                    cfg.wal_group = value
                        .parse()
                        .map_err(|_| format!("line {}: bad integer", lineno + 1))?;
                    if cfg.wal_group == 0 {
                        return Err(format!(
                            "line {}: wal_group must be >= 1",
                            lineno + 1
                        ));
                    }
                }
                "net" => {
                    cfg.net = value
                        .parse()
                        .map_err(|_| format!("line {}: bad bool", lineno + 1))?
                }
                "net_timeout_ns" => {
                    cfg.net_timeout_ns = value
                        .parse()
                        .map_err(|_| format!("line {}: bad integer", lineno + 1))?;
                    if cfg.net_timeout_ns == 0 {
                        return Err(format!(
                            "line {}: net_timeout_ns must be >= 1",
                            lineno + 1
                        ));
                    }
                }
                "net_buffer" => {
                    cfg.net_buffer = value
                        .parse()
                        .map_err(|_| format!("line {}: bad integer", lineno + 1))?
                }
                "parity" => {
                    cfg.parity = value
                        .parse()
                        .map_err(|_| format!("line {}: bad bool", lineno + 1))?
                }
                "parity_group" => {
                    cfg.parity_group = value
                        .parse()
                        .map_err(|_| format!("line {}: bad integer", lineno + 1))?;
                    if cfg.parity_group == 0 {
                        return Err(format!(
                            "line {}: parity_group must be >= 1",
                            lineno + 1
                        ));
                    }
                }
                "merge_threads" => {
                    cfg.merge_threads = value
                        .parse()
                        .map_err(|_| format!("line {}: bad integer", lineno + 1))?
                }
                "manifest" => {
                    cfg.manifest = value
                        .parse()
                        .map_err(|_| format!("line {}: bad bool", lineno + 1))?
                }
                "manifest_key" => {
                    if value.is_empty() {
                        return Err(format!("line {}: manifest_key must not be empty", lineno + 1));
                    }
                    cfg.manifest_key = value.to_string()
                }
                "query_budget" => {
                    cfg.query_budget = value
                        .parse()
                        .map_err(|_| format!("line {}: bad integer", lineno + 1))?
                }
                "workflow_type" => cfg.workflow_type = Some(value.to_string()),
                "async" => {
                    cfg.async_store = value
                        .parse()
                        .map_err(|_| format!("line {}: bad bool", lineno + 1))?
                }
                "format" => {
                    cfg.format = match value {
                        "turtle" => RdfFormat::Turtle,
                        "ntriples" => RdfFormat::NTriples,
                        _ => return Err(format!("line {}: unknown format", lineno + 1)),
                    }
                }
                "policy" => {
                    cfg.policy = if value == "at_end" {
                        SerializationPolicy::AtEnd
                    } else if let Some(n) = value.strip_prefix("every:") {
                        SerializationPolicy::EveryRecords(
                            n.parse()
                                .map_err(|_| format!("line {}: bad count", lineno + 1))?,
                        )
                    } else {
                        return Err(format!("line {}: unknown policy", lineno + 1));
                    }
                }
                "preset" => {
                    cfg.selector = match value {
                        "all" => ClassSelector::all(),
                        "none" => ClassSelector::none(),
                        "dassa_file" => ClassSelector::dassa_file_lineage(),
                        "dassa_dataset" => ClassSelector::dassa_dataset_lineage(),
                        "dassa_attribute" => ClassSelector::dassa_attribute_lineage(),
                        "h5bench_1" => ClassSelector::h5bench_scenario1(),
                        "h5bench_2" => ClassSelector::h5bench_scenario2(),
                        "h5bench_3" => ClassSelector::h5bench_scenario3(),
                        "topreco" => ClassSelector::topreco(),
                        _ => return Err(format!("line {}: unknown preset", lineno + 1)),
                    }
                }
                "track" | "untrack" => {
                    for item in value.split(',') {
                        let it = parse_item(item.trim())
                            .ok_or_else(|| format!("line {}: unknown item {item}", lineno + 1))?;
                        if key == "track" {
                            cfg.selector.enable(it);
                        } else {
                            cfg.selector.disable(it);
                        }
                    }
                }
                other => return Err(format!("line {}: unknown key {other}", lineno + 1)),
            }
        }
        // Cross-key validation (after the loop: ini files are order-free).
        // Parity groups are defined over framed commits — without the
        // checksummed format there are no member CRCs to record and no
        // Merkle roots for scrub to restore, so the combination is a
        // configuration error, not a silent no-op.
        if cfg.parity && !cfg.checksum_format {
            return Err("parity requires checksum_format = true".to_string());
        }
        // Streaming acks promise "journal-durable on the rank"; without
        // the WAL there is nothing for an aggregator-crash resync to
        // replay above the last flush, so acked records could silently
        // vanish — a configuration error, not a weaker mode.
        if cfg.net && !cfg.wal {
            return Err("net requires wal = true (resync replays the journal)".to_string());
        }
        Ok(cfg)
    }
}

fn parse_item(s: &str) -> Option<TrackItem> {
    use provio_model::{ActivityClass as Ac, AgentClass as Ag, EntityClass as E, ExtensibleClass as X};
    Some(match s {
        "directory" => E::Directory.into(),
        "file" => E::File.into(),
        "group" => E::Group.into(),
        "dataset" => E::Dataset.into(),
        "attribute" => E::Attribute.into(),
        "datatype" => E::Datatype.into(),
        "link" => E::Link.into(),
        "create" => Ac::Create.into(),
        "open" => Ac::Open.into(),
        "read" => Ac::Read.into(),
        "write" => Ac::Write.into(),
        "fsync" => Ac::Fsync.into(),
        "rename" => Ac::Rename.into(),
        "user" => Ag::User.into(),
        "thread" => Ag::Thread.into(),
        "program" => Ag::Program.into(),
        "type" => X::Type.into(),
        "configuration" => X::Configuration.into(),
        "metrics" => X::Metrics.into(),
        "duration" => TrackItem::Duration,
        "bytes" => TrackItem::ByteCounts,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use provio_model::{ActivityClass, EntityClass};

    #[test]
    fn defaults_are_sane() {
        let c = ProvIoConfig::default();
        assert_eq!(c.policy, SerializationPolicy::AtEnd);
        assert_eq!(c.format, RdfFormat::Turtle);
        assert!(c.async_store);
        assert_eq!(c.selector.enabled_count(), 21);
    }

    #[test]
    fn builder_chain() {
        let c = ProvIoConfig::default()
            .with_store_dir("/x")
            .with_policy(SerializationPolicy::EveryRecords(64))
            .with_format(RdfFormat::NTriples)
            .synchronous()
            .with_workflow_type("Synthetic");
        assert_eq!(c.store_dir, "/x");
        assert!(!c.async_store);
        assert_eq!(c.workflow_type.as_deref(), Some("Synthetic"));
    }

    #[test]
    fn ini_full_round() {
        let c = ProvIoConfig::from_ini(
            "# PROV-IO config\n\
             [provio]\n\
             store_dir = /prov\n\
             policy = every:128\n\
             format = ntriples\n\
             async = false\n\
             preset = dassa_file\n\
             track = dataset, duration\n\
             untrack = rename\n\
             workflow_type = Acoustic Sensing\n",
        )
        .unwrap();
        assert_eq!(c.store_dir, "/prov");
        assert_eq!(c.policy, SerializationPolicy::EveryRecords(128));
        assert_eq!(c.format, RdfFormat::NTriples);
        assert!(!c.async_store);
        assert!(c.selector.is_enabled(EntityClass::Dataset));
        assert!(c.selector.is_enabled(provio_model::TrackItem::Duration));
        assert!(!c.selector.is_enabled(ActivityClass::Rename));
        assert_eq!(c.workflow_type.as_deref(), Some("Acoustic Sensing"));
    }

    #[test]
    fn ini_rejects_garbage() {
        assert!(ProvIoConfig::from_ini("nonsense").is_err());
        assert!(ProvIoConfig::from_ini("policy = sometimes").is_err());
        assert!(ProvIoConfig::from_ini("track = telepathy").is_err());
        assert!(ProvIoConfig::from_ini("zzz = 1").is_err());
    }

    #[test]
    fn retry_knobs_from_ini_and_backoff_curve() {
        let c = ProvIoConfig::from_ini(
            "retry_max_attempts = 5\nretry_backoff_ns = 1000\n",
        )
        .unwrap();
        assert_eq!(c.retry.max_attempts, 5);
        assert_eq!(c.retry.backoff_ns, 1000);
        assert_eq!(c.retry.backoff_for(1), 1000);
        assert_eq!(c.retry.backoff_for(2), 2000);
        assert_eq!(c.retry.backoff_for(3), 4000);
        // Saturates instead of overflowing for absurd failure counts.
        let absurd = RetryPolicy {
            max_attempts: 2,
            backoff_ns: u64::MAX,
            ..RetryPolicy::default()
        };
        assert!(absurd.backoff_for(40) > 0);
    }

    #[test]
    fn retry_jitter_knob_from_ini() {
        assert!(!ProvIoConfig::default().retry.jitter, "off by default");
        let c = ProvIoConfig::from_ini("retry_jitter = true\n").unwrap();
        assert!(c.retry.jitter);
        let c = ProvIoConfig::from_ini("retry_jitter = false\n").unwrap();
        assert!(!c.retry.jitter);
        assert!(ProvIoConfig::from_ini("retry_jitter = perhaps").is_err());
    }

    #[test]
    fn decorrelated_jitter_bounds_determinism_and_divergence() {
        let p = RetryPolicy {
            max_attempts: 5,
            backoff_ns: 1000,
            jitter: true,
        };
        // Every draw lands in [base, max(3*prev, base+1)), never past the cap.
        let mut rng = DetRng::new(7);
        let mut prev = p.backoff_ns;
        for _ in 0..200 {
            let d = p.jittered_backoff(prev, &mut rng);
            assert!(d >= p.backoff_ns);
            assert!(d < prev.saturating_mul(3).max(p.backoff_ns + 1));
            assert!(d <= p.backoff_cap());
            prev = d;
        }
        // Same seed, same delay sequence — the schedule is reproducible.
        let draws = |seed: u64| -> Vec<u64> {
            let mut rng = DetRng::new(seed);
            let mut prev = p.backoff_ns;
            (0..8)
                .map(|_| {
                    prev = p.jittered_backoff(prev, &mut rng);
                    prev
                })
                .collect()
        };
        assert_eq!(draws(42), draws(42));
        // Different seeds (different stores) decorrelate: the point of the
        // knob is that N ranks don't retry in lockstep.
        assert_ne!(draws(42), draws(43));
        // Degenerate base of 0 still makes progress and never panics.
        let z = RetryPolicy { max_attempts: 2, backoff_ns: 0, jitter: true };
        let mut rng = DetRng::new(1);
        assert!(z.jittered_backoff(0, &mut rng) >= 1);
    }

    #[test]
    fn delta_knobs_default_and_ini() {
        let c = ProvIoConfig::default();
        assert!(c.delta_segments);
        assert_eq!(c.compact_every, crate::store::DEFAULT_COMPACT_EVERY);
        let c = ProvIoConfig::from_ini(
            "[store]\ndelta_segments = false\ncompact_every = 7\n",
        )
        .unwrap();
        assert!(!c.delta_segments);
        assert_eq!(c.compact_every, 7);
        assert!(ProvIoConfig::from_ini("delta_segments = maybe").is_err());
        assert!(ProvIoConfig::from_ini("compact_every = lots").is_err());
        let c = ProvIoConfig::default()
            .with_delta_segments(false)
            .with_compact_every(3);
        assert!(!c.delta_segments);
        assert_eq!(c.compact_every, 3);
    }

    #[test]
    fn resilience_knobs_default_builder_and_ini() {
        let c = ProvIoConfig::default();
        assert_eq!(c.queue_capacity, DEFAULT_QUEUE_CAPACITY);
        assert_eq!(c.overload, OverloadPolicy::Block);
        assert_eq!(c.breaker_threshold, 0, "breaker off unless armed");
        assert_eq!(c.breaker_backoff_ns, DEFAULT_BREAKER_BACKOFF_NS);
        assert_eq!(c.query_budget, 0, "queries unlimited unless capped");

        let c = ProvIoConfig::default()
            .with_queue(16, OverloadPolicy::Shed)
            .with_breaker(3, 5_000)
            .with_query_budget(10_000);
        assert_eq!(c.queue_capacity, 16);
        assert_eq!(c.overload, OverloadPolicy::Shed);
        assert_eq!(c.breaker_threshold, 3);
        assert_eq!(c.breaker_backoff_ns, 5_000);
        assert_eq!(c.query_budget, 10_000);

        let c = ProvIoConfig::from_ini(
            "[store]\n\
             queue_capacity = 8\n\
             overload_policy = shed\n\
             breaker_threshold = 4\n\
             breaker_backoff_ns = 2000\n\
             [query]\n\
             query_budget = 500\n",
        )
        .unwrap();
        assert_eq!(c.queue_capacity, 8);
        assert_eq!(c.overload, OverloadPolicy::Shed);
        assert_eq!(c.breaker_threshold, 4);
        assert_eq!(c.breaker_backoff_ns, 2000);
        assert_eq!(c.query_budget, 500);
        assert!(ProvIoConfig::from_ini("overload_policy = panic").is_err());
        assert!(ProvIoConfig::from_ini("breaker_threshold = many").is_err());
    }

    #[test]
    fn checksum_knob_default_builder_and_ini() {
        assert!(
            !ProvIoConfig::default().checksum_format,
            "legacy format unless asked"
        );
        assert!(ProvIoConfig::default().with_checksums(true).checksum_format);
        let c = ProvIoConfig::from_ini("[store]\nchecksum_format = true\n").unwrap();
        assert!(c.checksum_format);
        assert!(ProvIoConfig::from_ini("checksum_format = sure").is_err());
    }

    #[test]
    fn wal_knobs_default_builder_and_ini() {
        let c = ProvIoConfig::default();
        assert!(!c.wal, "journal off unless asked");
        assert_eq!(c.wal_group, DEFAULT_WAL_GROUP);

        let c = ProvIoConfig::default().with_wal(true, 16);
        assert!(c.wal);
        assert_eq!(c.wal_group, 16);
        // The builder clamps a nonsensical group size instead of storing 0.
        assert_eq!(ProvIoConfig::default().with_wal(true, 0).wal_group, 1);

        let c = ProvIoConfig::from_ini("[store]\nwal = true\nwal_group = 8\n").unwrap();
        assert!(c.wal);
        assert_eq!(c.wal_group, 8);

        // Round-trip of just `wal` keeps the default group size.
        let c = ProvIoConfig::from_ini("wal = true\n").unwrap();
        assert!(c.wal);
        assert_eq!(c.wal_group, DEFAULT_WAL_GROUP);

        assert!(ProvIoConfig::from_ini("wal = maybe").is_err());
        assert!(ProvIoConfig::from_ini("wal_group = many").is_err());
        let err = ProvIoConfig::from_ini("wal = true\nwal_group = 0\n").unwrap_err();
        assert!(err.contains("wal_group must be >= 1"), "err: {err}");
    }

    #[test]
    fn parity_knobs_default_builder_and_ini() {
        let c = ProvIoConfig::default();
        assert!(!c.parity, "parity off unless asked");
        assert_eq!(c.parity_group, DEFAULT_PARITY_GROUP);
        assert_eq!(c.merge_threads, 0, "merge pool auto-sized by default");

        let c = ProvIoConfig::default().with_parity(true, 4).with_merge_threads(8);
        assert!(c.parity);
        assert_eq!(c.parity_group, 4);
        assert_eq!(c.merge_threads, 8);
        // The builder clamps a nonsensical group size instead of storing 0.
        assert_eq!(ProvIoConfig::default().with_parity(true, 0).parity_group, 1);

        let c = ProvIoConfig::from_ini(
            "[store]\nchecksum_format = true\nparity = true\nparity_group = 3\nmerge_threads = 4\n",
        )
        .unwrap();
        assert!(c.parity && c.checksum_format);
        assert_eq!(c.parity_group, 3);
        assert_eq!(c.merge_threads, 4);

        // Round-trip of just `parity` keeps the default group width.
        let c = ProvIoConfig::from_ini("checksum_format = true\nparity = true\n").unwrap();
        assert_eq!(c.parity_group, DEFAULT_PARITY_GROUP);

        assert!(ProvIoConfig::from_ini("parity = maybe").is_err());
        assert!(ProvIoConfig::from_ini("parity_group = many").is_err());
        assert!(ProvIoConfig::from_ini("merge_threads = lots").is_err());
        let err = ProvIoConfig::from_ini(
            "checksum_format = true\nparity = true\nparity_group = 0\n",
        )
        .unwrap_err();
        assert!(err.contains("parity_group must be >= 1"), "err: {err}");

        // Parity without the framed format is rejected, in either key order.
        let err = ProvIoConfig::from_ini("parity = true\n").unwrap_err();
        assert!(err.contains("requires checksum_format"), "err: {err}");
        let err =
            ProvIoConfig::from_ini("parity = true\nchecksum_format = false\n").unwrap_err();
        assert!(err.contains("requires checksum_format"), "err: {err}");
        // A bare parity_group (tuning a disabled feature) stays legal.
        assert!(ProvIoConfig::from_ini("parity_group = 5\n").is_ok());
    }

    #[test]
    fn net_knobs_default_builder_and_ini() {
        let c = ProvIoConfig::default();
        assert!(!c.net, "post-hoc merge only unless asked");
        assert_eq!(c.net_timeout_ns, DEFAULT_NET_TIMEOUT_NS);
        assert_eq!(c.net_buffer, DEFAULT_NET_BUFFER);

        let c = ProvIoConfig::default()
            .with_net(true, 5_000_000)
            .with_net_buffer(8);
        assert!(c.net);
        assert_eq!(c.net_timeout_ns, 5_000_000);
        assert_eq!(c.net_buffer, 8);
        // The builder clamps a nonsensical timeout instead of storing 0.
        assert_eq!(ProvIoConfig::default().with_net(true, 0).net_timeout_ns, 1);

        let c = ProvIoConfig::from_ini(
            "[net]\nwal = true\nnet = true\nnet_timeout_ns = 2000000\nnet_buffer = 4\n",
        )
        .unwrap();
        assert!(c.net && c.wal);
        assert_eq!(c.net_timeout_ns, 2_000_000);
        assert_eq!(c.net_buffer, 4);

        // Round-trip of just `net` keeps the default timeout and buffer.
        let c = ProvIoConfig::from_ini("wal = true\nnet = true\n").unwrap();
        assert_eq!(c.net_timeout_ns, DEFAULT_NET_TIMEOUT_NS);
        assert_eq!(c.net_buffer, DEFAULT_NET_BUFFER);

        assert!(ProvIoConfig::from_ini("net = maybe").is_err());
        assert!(ProvIoConfig::from_ini("net_timeout_ns = soon").is_err());
        assert!(ProvIoConfig::from_ini("net_buffer = lots").is_err());
    }

    #[test]
    fn net_timeout_zero_is_rejected() {
        let err =
            ProvIoConfig::from_ini("wal = true\nnet = true\nnet_timeout_ns = 0\n").unwrap_err();
        assert!(err.contains("net_timeout_ns must be >= 1"), "err: {err}");
    }

    #[test]
    fn net_without_wal_is_rejected() {
        // In either key order: cross-key validation runs after the loop.
        let err = ProvIoConfig::from_ini("net = true\n").unwrap_err();
        assert!(err.contains("net requires wal"), "err: {err}");
        let err = ProvIoConfig::from_ini("net = true\nwal = false\n").unwrap_err();
        assert!(err.contains("net requires wal"), "err: {err}");
        // Tuning knobs of a disabled feature stay legal without `wal`.
        assert!(ProvIoConfig::from_ini("net_timeout_ns = 5\nnet_buffer = 2\n").is_ok());
    }

    #[test]
    fn manifest_knobs_default_builder_and_ini() {
        let c = ProvIoConfig::default();
        assert!(!c.manifest, "unsigned unless asked");
        assert_eq!(c.manifest_key, DEFAULT_MANIFEST_KEY);

        let c = ProvIoConfig::default()
            .with_manifest(true)
            .with_manifest_key("campaign-7-signing-key");
        assert!(c.manifest);
        assert_eq!(c.manifest_key, "campaign-7-signing-key");

        let c = ProvIoConfig::from_ini(
            "[store]\nmanifest = true\nmanifest_key = s3cret\n",
        )
        .unwrap();
        assert!(c.manifest);
        assert_eq!(c.manifest_key, "s3cret");

        // `manifest` alone keeps the (insecure, published) default key.
        let c = ProvIoConfig::from_ini("manifest = true\n").unwrap();
        assert_eq!(c.manifest_key, DEFAULT_MANIFEST_KEY);

        assert!(ProvIoConfig::from_ini("manifest = sure").is_err());
        let err = ProvIoConfig::from_ini("manifest_key =\n").unwrap_err();
        assert!(err.contains("must not be empty"), "err: {err}");
    }

    #[test]
    fn format_extensions() {
        assert_eq!(RdfFormat::Turtle.extension(), "ttl");
        assert_eq!(RdfFormat::NTriples.extension(), "nt");
    }
}
