//! `provio` — the PROV-IO framework (paper §4.2, §5).
//!
//! End-to-end provenance for scientific workflows on (simulated) HPC
//! systems, with the paper's three major components:
//!
//! 1. **Provenance tracking** — transparent capture at two I/O layers plus
//!    explicit APIs:
//!    * [`connector::ProvIoVol`] — the PROV-IO Lib Connector: a stacked
//!      HDF5 VOL connector that forwards every object-level call to the
//!      inner connector and records the PROV-IO model's Entity/Activity/
//!      Agent information, maintaining a locked live-object table for
//!      concurrency control (the paper's "linked list with locking").
//!    * [`wrapper::PosixWrapper`] — the PROV-IO Syscall Wrapper: a
//!      [`provio_hpcfs::SyscallHook`] (the GOTCHA stand-in) that maps POSIX
//!      calls onto the model.
//!    * [`api::ProvIoApi`] — the explicit PROV-IO APIs for workflow-
//!      specific provenance (Configuration / Metrics / Type), used by Top
//!      Reco to map hyperparameters to training accuracy.
//! 2. **Provenance store** — [`store::ProvenanceStore`]: per-process
//!    in-memory RDF sub-graphs serialized asynchronously to per-process
//!    files on the parallel file system, merged after the run by
//!    [`merge::merge_directory`] with GUID-keyed deduplication.
//! 3. **User engine** — [`engine`]: sub-class selection (via
//!    [`provio_model::ClassSelector`] in [`config::ProvIoConfig`]), SPARQL
//!    queries, backward-lineage derivation, I/O statistics, and Graphviz
//!    visualization.

pub mod api;
pub mod collect;
pub mod config;
pub mod connector;
pub mod crashcheck;
pub mod engine;
pub mod frame;
pub mod merge;
pub mod recover;
pub mod report;
pub mod scrub;
pub mod store;
pub mod tracker;
pub mod verify;
pub mod wrapper;

pub use api::ProvIoApi;
pub use collect::{Collector, DeliveryReport, NetClient, NetStats};
pub use config::{OverloadPolicy, ProvIoConfig, RdfFormat, RetryPolicy, SerializationPolicy};
pub use connector::ProvIoVol;
pub use crashcheck::{
    crashcheck, record_workload, CrashcheckConfig, CrashcheckReport, RecordedWorkload, Violation,
};
pub use engine::ProvQueryEngine;
pub use frame::{store_guid, FrameKind, FramedFile};
pub use merge::{merge_directory, merge_directory_sequential, merge_directory_with_threads};
pub use recover::{recover_all, RecoveryOutcome};
pub use report::{doctor, DoctorReport, RankCrash, RunReport};
pub use scrub::{repairable_paths, scrub_directory, ScrubReport};
pub use store::{BreakerState, ProvenanceStore};
pub use tracker::{IoEvent, ObjectDesc, ProvTracker, TrackSummary, TrackerRegistry};
pub use verify::{
    quarantine_tampered, verify_directory, FileCheck, FileVerdict, VerifyReport,
};
pub use wrapper::PosixWrapper;
