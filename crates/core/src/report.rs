//! Run-level completeness reporting and merged-graph consistency checks.
//!
//! A resilient run (ranks may crash, files may tear, flushes may shed) is
//! only useful if the survivor graph comes with an honest statement of what
//! it covers. This module joins the two sources of truth:
//!
//! * the per-rank [`RankOutcome`]s a superstep returns — who crashed,
//!   where, and why — and
//! * the [`MergeReport`] from [`crate::merge::merge_directory`] — which
//!   per-process sub-graphs were recovered, salvaged, or lost.
//!
//! [`RunReport`] folds both into a single completeness metric
//! (`recovered sub-graphs / expected sub-graphs`), and [`doctor`] runs a
//! structural consistency pass over the merged graph itself, flagging
//! dangling relation edges, activities with no responsible agent, and GUIDs
//! that resolve to more than one class (a content-address collision or a
//! corrupted merge).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use provio_model::{Guid, NodeClass, Relation};
use provio_mpi::RankOutcome;
use provio_rdf::{ns, Graph};

use crate::collect::DeliveryReport;
use crate::merge::MergeReport;
use crate::scrub::ScrubReport;
use crate::tracker::TrackSummary;
use crate::verify::{FileVerdict, VerifyReport};

/// One crashed rank, as witnessed by a superstep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankCrash {
    pub rank: u32,
    /// The superstep phase label the rank died in.
    pub phase: String,
    /// The panic payload (e.g. an `ESIMCRASH` message).
    pub cause: String,
}

/// Joined view of a run: which ranks finished, and how much of the
/// provenance they produced survived into the merged graph.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Ranks the run started with.
    pub world_size: u32,
    /// Ranks that crashed, at most one entry per rank (the first crash
    /// wins — a rank that dies in phase 2 stays dead in phase 3).
    pub crashed: Vec<RankCrash>,
    /// Sub-graphs the merge was expected to recover (typically the number
    /// of surviving ranks, or the world size when crashed ranks' partial
    /// stores are also salvageable).
    pub expected_subgraphs: usize,
    /// Sub-graph files that actually contributed triples.
    pub recovered_subgraphs: usize,
    /// Triples in the merged graph.
    pub merged_triples: usize,
    /// Triples recovered from the valid prefix of torn files.
    pub salvaged_triples: usize,
    /// Files with unrecoverable content (legacy files yielding nothing,
    /// framed files with failed CRC batches).
    pub corrupt_files: usize,
    /// Framed files whose identity failed verification and were quarantined
    /// by the merge.
    pub quarantined_files: usize,
    /// Discontinuities detected in the per-store frame chains.
    pub chain_breaks: u64,
    /// Triples recovered from per-rank write-ahead journals: records that
    /// were journaled but never covered by a committed snapshot or segment
    /// (the writer crashed or shed flushes). With the journal enabled the
    /// residual loss for a crashed rank is bounded by its group-commit
    /// size: at most `wal_group` records ride in the unflushed buffer.
    pub replayed_triples: usize,
    /// Journal generation files whose torn or bit-rotted tail was truncated
    /// at the last verified chunk before replay.
    pub wal_tails_truncated: u64,
    /// Files whose content root matched the signed run manifest.
    pub verified_files: usize,
    /// Files (or trust artifacts) `verify` condemned as tampered:
    /// internally consistent but not what was signed.
    pub tampered_files: usize,
    /// Files no signed manifest covers (pre-manifest legacy runs, or a
    /// manifest that failed its own signature).
    pub unsigned_files: usize,
    /// Manifest files `verify` found listed but absent on disk.
    pub missing_files: usize,
    /// Did the run manifest parse and verify under the campaign key?
    /// `None` until a [`VerifyReport`] is attached (no verify pass ran).
    pub manifest_ok: Option<bool>,
    /// Did the campaign ledger seal this run's manifest?
    pub ledger_ok: bool,
    /// Files a scrub pass restored byte-identical from parity (damaged or
    /// missing group members, plus quarantined copies restored for free).
    pub scrub_repaired_files: usize,
    /// CRC batches (or journal chunks) that verify again after repair.
    pub scrub_repaired_batches: u64,
    /// Member paths lost beyond parity tolerance: the merge-time loss
    /// accounting (salvage, quarantine, truncation) stands for these.
    pub scrub_unrecoverable: usize,
    /// Store commit attempts retried after a transient failure, summed
    /// over ranks (from [`TrackSummary::flush_retries`]). Non-zero with
    /// `degraded == false` means the retry policy absorbed real trouble.
    pub flush_retries: u64,
    /// `true` once per-rank summaries carrying streaming counters were
    /// attached (the run collected live, not just post-hoc).
    pub streamed: bool,
    /// Batches ranks offered to the streaming pipeline, summed.
    pub net_sent: u64,
    /// Batches the collector acked, summed.
    pub net_acked: u64,
    /// Retransmissions after timeouts, summed over ranks.
    pub net_retries: u64,
    /// Batches shed from the stream at full send buffers (still durable
    /// in the rank stores — a stream gap, not provenance loss).
    pub net_shed_batches: u64,
    /// Batches still unacked when their rank finished (e.g. run ended
    /// inside a partition). Every gap is accounted here: streamed-view
    /// consumers know exactly how many batches only the durable stores
    /// hold.
    pub net_unacked: u64,
    /// Batches the collector received (every copy off the fabric).
    pub delivered_batches: u64,
    /// Redeliveries the (rank, seq) watermark dropped — duplicates and
    /// retransmissions, acked but never re-inserted.
    pub duplicates_dropped: u64,
    /// Fresh arrivals that overtook a predecessor on the fabric.
    pub out_of_order_batches: u64,
    /// Aggregator crashes during the run.
    pub collector_crashes: u64,
    /// Resyncs the aggregator performed from the rank-durable stores.
    pub resyncs: u64,
    /// Triples a resync recovered that streaming had not yet delivered.
    pub resync_triples: u64,
}

impl RunReport {
    pub fn new(world_size: u32) -> Self {
        RunReport {
            world_size,
            ..RunReport::default()
        }
    }

    /// Fold one superstep's outcomes in. Ranks already recorded as crashed
    /// keep their original crash site; survivors contribute nothing.
    pub fn record_outcomes<T>(&mut self, outcomes: &[RankOutcome<T>]) {
        for outcome in outcomes {
            if let RankOutcome::Crashed { rank, phase, cause } = outcome {
                if !self.crashed.iter().any(|c| c.rank == *rank) {
                    self.crashed.push(RankCrash {
                        rank: *rank,
                        phase: phase.clone(),
                        cause: cause.clone(),
                    });
                }
            }
        }
        self.crashed.sort_by_key(|c| c.rank);
    }

    /// Attach the post-run merge: how many sub-graphs were expected, and
    /// what the merge actually recovered.
    pub fn attach_merge(&mut self, expected_subgraphs: usize, report: &MergeReport) {
        self.expected_subgraphs = expected_subgraphs;
        self.recovered_subgraphs = report.files;
        self.merged_triples = report.triples;
        self.salvaged_triples = report.salvaged_triples;
        self.corrupt_files = report.corrupt.len();
        self.quarantined_files = report.quarantined.len();
        self.chain_breaks = report.chain_breaks;
        self.replayed_triples = report.replayed_triples;
        self.wal_tails_truncated = report.wal_tails_truncated;
    }

    /// Attach a post-run `verify` pass: what the signed manifest and the
    /// campaign ledger say about the files the merge consumed.
    pub fn attach_verify(&mut self, report: &VerifyReport) {
        self.verified_files = report.count(FileVerdict::Verified);
        self.tampered_files = report.count(FileVerdict::Tampered);
        self.unsigned_files = report.count(FileVerdict::Unsigned);
        self.missing_files = report.count(FileVerdict::Missing);
        self.manifest_ok = Some(report.manifest_present && report.manifest_ok);
        self.ledger_ok = report.ledger_ok;
    }

    /// Attach a scrub pass: what the parity redundancy repaired before
    /// (or after) the merge, and what stayed lost. Unrecoverable *members*
    /// cost completeness — the run's artifacts are provably not all
    /// reconstructible, even if the merge salvaged their intact batches.
    /// An unusable parity file is lost redundancy, not lost data: the
    /// members themselves still verify, so it never costs completeness.
    pub fn attach_scrub(&mut self, report: &ScrubReport) {
        self.scrub_repaired_files = report.repaired_files.len();
        self.scrub_repaired_batches = report.repaired_batches;
        self.scrub_unrecoverable = report.unrecoverable.len();
    }

    /// Attach per-rank tracking summaries: flush-retry counts always,
    /// plus the sender-side delivery counters when the run streamed.
    pub fn attach_summaries(&mut self, summaries: &[(u32, TrackSummary)]) {
        self.flush_retries = summaries.iter().map(|(_, s)| s.flush_retries).sum();
        self.net_sent = summaries.iter().map(|(_, s)| s.net_sent).sum();
        self.net_acked = summaries.iter().map(|(_, s)| s.net_acked).sum();
        self.net_retries = summaries.iter().map(|(_, s)| s.net_retries).sum();
        self.net_shed_batches = summaries.iter().map(|(_, s)| s.net_shed_batches).sum();
        self.net_unacked = summaries.iter().map(|(_, s)| s.net_unacked).sum();
        if self.net_sent > 0 {
            self.streamed = true;
        }
    }

    /// Attach the aggregator's view of a streamed run.
    pub fn attach_delivery(&mut self, report: &DeliveryReport) {
        self.streamed = true;
        self.delivered_batches = report.received_batches;
        self.duplicates_dropped = report.duplicate_batches;
        self.out_of_order_batches = report.out_of_order_batches;
        self.collector_crashes = report.crashes;
        self.resyncs = report.resyncs;
        self.resync_triples = report.resync_triples;
    }

    /// Ranks that completed every recorded superstep.
    pub fn surviving_ranks(&self) -> Vec<u32> {
        let dead: BTreeSet<u32> = self.crashed.iter().map(|c| c.rank).collect();
        (0..self.world_size).filter(|r| !dead.contains(r)).collect()
    }

    /// Fraction of expected sub-graphs recovered, in `[0, 1]`.
    pub fn completeness(&self) -> f64 {
        let expected = self.expected_subgraphs.max(1) as f64;
        (self.recovered_subgraphs as f64 / expected).min(1.0)
    }

    /// True when nothing was lost: no crashes, no unrecoverable or
    /// quarantined files, unbroken frame chains, and every expected
    /// sub-graph present.
    pub fn is_complete(&self) -> bool {
        self.crashed.is_empty()
            && self.corrupt_files == 0
            && self.quarantined_files == 0
            && self.chain_breaks == 0
            && self.scrub_unrecoverable == 0
            && self.recovered_subgraphs >= self.expected_subgraphs
    }

    /// True when the attached verify pass vouched for the run: the manifest
    /// signed, the ledger sealed, nothing tampered or missing. Orthogonal
    /// to [`Self::is_complete`] — damage costs completeness but not trust,
    /// and a tampered file can merge "cleanly" yet be untrusted. `false`
    /// until [`Self::attach_verify`] runs.
    pub fn is_trusted(&self) -> bool {
        self.manifest_ok == Some(true)
            && self.ledger_ok
            && self.tampered_files == 0
            && self.missing_files == 0
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "run: {}/{} ranks survived; {}/{} sub-graphs recovered \
             ({:.1}% complete), {} triples merged, {} salvaged, {} replayed \
             from journals, {} files lost, {} quarantined, {} chain breaks, \
             {} journal tails truncated",
            self.world_size as usize - self.crashed.len(),
            self.world_size,
            self.recovered_subgraphs,
            self.expected_subgraphs,
            self.completeness() * 100.0,
            self.merged_triples,
            self.salvaged_triples,
            self.replayed_triples,
            self.corrupt_files,
            self.quarantined_files,
            self.chain_breaks,
            self.wal_tails_truncated,
        )?;
        if self.flush_retries > 0 {
            write!(f, ", {} flush retries absorbed", self.flush_retries)?;
        }
        if self.streamed {
            write!(
                f,
                "; stream: {}/{} batches acked, {} retries, {} duplicates \
                 dropped, {} out of order, {} shed, {} unacked (durable \
                 store owns the gap), {} collector crash(es), {} resync(s) \
                 recovering {} triples",
                self.net_acked,
                self.net_sent,
                self.net_retries,
                self.duplicates_dropped,
                self.out_of_order_batches,
                self.net_shed_batches,
                self.net_unacked,
                self.collector_crashes,
                self.resyncs,
                self.resync_triples,
            )?;
        }
        if self.scrub_repaired_files > 0 || self.scrub_unrecoverable > 0 {
            write!(
                f,
                "; scrub: {} files repaired ({} batches), {} unrecoverable",
                self.scrub_repaired_files,
                self.scrub_repaired_batches,
                self.scrub_unrecoverable,
            )?;
        }
        match self.manifest_ok {
            None => write!(f, "; trust: unverified"),
            Some(signed) => write!(
                f,
                "; trust: {} — {} verified, {} tampered, {} missing, \
                 {} unsigned, manifest {}, ledger {}",
                if self.is_trusted() {
                    "TRUSTED"
                } else {
                    "NOT TRUSTED"
                },
                self.verified_files,
                self.tampered_files,
                self.missing_files,
                self.unsigned_files,
                if signed { "signed" } else { "untrusted" },
                if self.ledger_ok { "sealed" } else { "broken" },
            ),
        }
    }
}

/// Findings of a [`doctor`] pass over a merged graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DoctorReport {
    /// Relation edges whose endpoint GUID has no `rdf:type` — the node the
    /// edge points at (or leaves from) was never recovered.
    pub orphan_relations: Vec<String>,
    /// Activity nodes with no `prov:wasAssociatedWith` edge: an I/O API
    /// invocation that lost its responsible agent.
    pub unassociated_activities: Vec<Guid>,
    /// GUIDs carrying more than one `rdf:type` — a content-address
    /// collision or a corrupted merge.
    pub duplicate_guids: Vec<Guid>,
    /// Triples inspected.
    pub checked_triples: usize,
}

impl DoctorReport {
    pub fn is_clean(&self) -> bool {
        self.orphan_relations.is_empty()
            && self.unassociated_activities.is_empty()
            && self.duplicate_guids.is_empty()
    }

    /// Total number of findings.
    pub fn findings(&self) -> usize {
        self.orphan_relations.len() + self.unassociated_activities.len() + self.duplicate_guids.len()
    }
}

impl fmt::Display for DoctorReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "doctor: {} triples checked, {} orphan relations, \
             {} unassociated activities, {} duplicate GUIDs",
            self.checked_triples,
            self.orphan_relations.len(),
            self.unassociated_activities.len(),
            self.duplicate_guids.len(),
        )
    }
}

/// Structural consistency pass over a merged provenance graph.
///
/// One linear scan collects every typed GUID and every model-relation edge
/// between GUIDs; the checks then run against those indexes. Endpoints that
/// are not run-scoped resources (e.g. class IRIs in membership triples) are
/// out of scope — the model owns their vocabulary, not the run.
pub fn doctor(graph: &Graph) -> DoctorReport {
    let mut report = DoctorReport::default();

    // subject IRI -> distinct rdf:type object IRIs
    let mut types: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    // (subject IRI, relation, object IRI) for GUID-to-GUID edges
    let mut edges: Vec<(String, Relation, String)> = Vec::new();

    for triple in graph.iter() {
        report.checked_triples += 1;
        let Some(subject_iri) = triple.subject.as_iri() else {
            continue;
        };
        if triple.predicate.as_str() == ns::RDF_TYPE {
            if let Some(obj) = triple.object.as_iri() {
                types
                    .entry(subject_iri.as_str().to_string())
                    .or_default()
                    .insert(obj.as_str().to_string());
            }
        } else if let Some(rel) = Relation::from_iri(triple.predicate.as_str()) {
            if let Some(obj) = triple.object.as_iri() {
                // Only GUID targets: membership edges point at class IRIs.
                if Guid::from_iri(obj).is_some() {
                    edges.push((
                        subject_iri.as_str().to_string(),
                        rel,
                        obj.as_str().to_string(),
                    ));
                }
            }
        }
    }

    for (subject, rel, object) in &edges {
        for endpoint in [subject, object] {
            if !types.contains_key(endpoint) {
                report.orphan_relations.push(format!(
                    "{subject} --{}--> {object}: {endpoint} has no rdf:type",
                    rel.local_name()
                ));
            }
        }
    }

    let associated: BTreeSet<&String> = edges
        .iter()
        .filter(|(_, rel, _)| *rel == Relation::WasAssociatedWith)
        .map(|(subject, _, _)| subject)
        .collect();

    for (subject, class_iris) in &types {
        if class_iris.len() > 1 {
            if let Some(guid) = Guid::from_iri(&provio_rdf::Iri::new(subject.clone())) {
                report.duplicate_guids.push(guid);
            }
        }
        let is_activity = class_iris
            .iter()
            .any(|iri| matches!(NodeClass::from_iri(iri), Some(NodeClass::Activity(_))));
        if is_activity && !associated.contains(subject) {
            if let Some(guid) = Guid::from_iri(&provio_rdf::Iri::new(subject.clone())) {
                report.unassociated_activities.push(guid);
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use provio_model::{ActivityClass, AgentClass, EntityClass};
    use provio_rdf::{Iri, Literal, Term, Triple};

    fn guid(local: &str) -> Guid {
        Guid::from_iri(&Iri::new(format!("{}{local}", ns::RESOURCE))).unwrap()
    }

    fn typed(g: &mut Graph, node: &Guid, class: NodeClass) {
        g.insert(&Triple::new(
            node.to_subject(),
            Iri::new(ns::RDF_TYPE),
            Term::iri(class.iri()),
        ));
        g.insert(&Triple::new(
            node.to_subject(),
            Iri::new(ns::RDFS_LABEL),
            Literal::plain(node.local().to_string()),
        ));
    }

    fn related(g: &mut Graph, from: &Guid, rel: Relation, to: &Guid) {
        g.insert(&Triple::new(
            from.to_subject(),
            Iri::new(rel.iri()),
            Term::Iri(to.to_iri()),
        ));
    }

    /// A minimal healthy graph: file --wasWrittenBy--> write activity
    /// --wasAssociatedWith--> program agent.
    fn healthy_graph() -> (Graph, Guid, Guid, Guid) {
        let mut g = Graph::new();
        let file = guid("File.run.out");
        let write = guid("Write.p100.1");
        let agent = guid("Program.demo");
        typed(&mut g, &file, EntityClass::File.into());
        typed(&mut g, &write, ActivityClass::Write.into());
        typed(&mut g, &agent, AgentClass::Program.into());
        related(&mut g, &file, Relation::WasWrittenBy, &write);
        related(&mut g, &write, Relation::WasAssociatedWith, &agent);
        (g, file, write, agent)
    }

    fn merge_report(files: usize, triples: usize) -> MergeReport {
        MergeReport {
            files,
            triples,
            corrupt: Vec::new(),
            recovered: Vec::new(),
            salvaged_triples: 0,
            quarantined: Vec::new(),
            salvaged_batches: 0,
            chain_breaks: 0,
            replayed_triples: 0,
            wal_tails_truncated: 0,
        }
    }

    #[test]
    fn scrub_results_fold_into_completeness() {
        let mut r = RunReport::new(2);
        r.attach_merge(2, &merge_report(2, 50));
        assert!(r.is_complete());
        let mut s = ScrubReport::default();
        s.repaired_files = vec!["/p/a".into()];
        s.repaired_batches = 3;
        r.attach_scrub(&s);
        assert!(r.is_complete(), "repair within tolerance costs nothing: {r}");
        assert!(
            format!("{r}").contains("scrub: 1 files repaired (3 batches), 0 unrecoverable"),
            "{r}"
        );
        s.unrecoverable = vec!["/p/b".into()];
        r.attach_scrub(&s);
        assert!(!r.is_complete(), "loss beyond tolerance costs completeness: {r}");
        // An unusable parity file is lost *redundancy*, not lost data: the
        // members all still verify, so completeness survives.
        let mut u = ScrubReport::default();
        u.unusable_parity = vec!["/p/a.p000000.par".into()];
        r.attach_scrub(&u);
        assert_eq!(r.scrub_unrecoverable, 0);
        assert!(r.is_complete(), "{r}");
    }

    #[test]
    fn integrity_damage_breaks_completeness() {
        let mut quarantined = merge_report(4, 100);
        quarantined.quarantined.push("/provio/evil.nt".into());
        let mut r = RunReport::new(4);
        r.attach_merge(4, &quarantined);
        assert_eq!(r.quarantined_files, 1);
        assert!(!r.is_complete(), "a quarantined file is lost provenance");

        let mut broken = merge_report(4, 100);
        broken.chain_breaks = 2;
        let mut r = RunReport::new(4);
        r.attach_merge(4, &broken);
        assert_eq!(r.chain_breaks, 2);
        assert!(!r.is_complete(), "a chain break is lost history");
        let line = r.to_string();
        assert!(line.contains("2 chain breaks"), "display: {line}");
    }

    #[test]
    fn crashes_dedupe_by_rank_and_first_crash_wins() {
        let mut report = RunReport::new(8);
        let phase_a: Vec<RankOutcome<u32>> = (0..8)
            .map(|r| {
                if r == 3 {
                    RankOutcome::Crashed {
                        rank: 3,
                        phase: "convert".into(),
                        cause: "ESIMCRASH: disk".into(),
                    }
                } else {
                    RankOutcome::Completed(r)
                }
            })
            .collect();
        // Phase B: rank 3 "crashes" again (skipped rank re-reported) and
        // rank 6 dies for real.
        let phase_b: Vec<RankOutcome<u32>> = (0..8)
            .map(|r| match r {
                3 => RankOutcome::Crashed {
                    rank: 3,
                    phase: "reduce".into(),
                    cause: "already dead".into(),
                },
                6 => RankOutcome::Crashed {
                    rank: 6,
                    phase: "reduce".into(),
                    cause: "ESIMCRASH: node".into(),
                },
                r => RankOutcome::Completed(r),
            })
            .collect();

        report.record_outcomes(&phase_a);
        report.record_outcomes(&phase_b);

        assert_eq!(report.crashed.len(), 2);
        assert_eq!(report.crashed[0].rank, 3);
        assert_eq!(report.crashed[0].phase, "convert"); // first crash wins
        assert_eq!(report.crashed[1].rank, 6);
        assert_eq!(report.surviving_ranks(), vec![0, 1, 2, 4, 5, 7]);
    }

    #[test]
    fn completeness_joins_outcomes_with_the_merge() {
        let mut report = RunReport::new(8);
        report.record_outcomes(&[RankOutcome::<()>::Crashed {
            rank: 5,
            phase: "write".into(),
            cause: "ESIMCRASH".into(),
        }]);

        // All 7 survivor sub-graphs recovered.
        report.attach_merge(7, &merge_report(7, 420));
        assert_eq!(report.completeness(), 1.0);
        assert!(!report.is_complete()); // a rank still crashed
        assert_eq!(report.merged_triples, 420);

        // Only 6 of 8 expected recovered.
        report.attach_merge(8, &merge_report(6, 360));
        assert!((report.completeness() - 0.75).abs() < 1e-9);
        assert!(!report.is_complete());

        let clean = {
            let mut r = RunReport::new(4);
            r.attach_merge(4, &merge_report(4, 100));
            r
        };
        assert!(clean.is_complete());
        assert_eq!(clean.completeness(), 1.0);
        let line = clean.to_string();
        assert!(line.contains("4/4 sub-graphs"), "display: {line}");
    }

    #[test]
    fn journal_replay_is_reported() {
        let mut merged = merge_report(3, 100);
        merged.replayed_triples = 7;
        merged.wal_tails_truncated = 1;
        let mut r = RunReport::new(4);
        r.attach_merge(4, &merged);
        assert_eq!(r.replayed_triples, 7);
        assert_eq!(r.wal_tails_truncated, 1);
        let line = r.to_string();
        assert!(line.contains("7 replayed"), "display: {line}");
        assert!(line.contains("1 journal tails truncated"), "display: {line}");
    }

    #[test]
    fn flush_retries_and_delivery_are_reported() {
        let mut r = RunReport::new(2);
        r.attach_merge(2, &merge_report(2, 50));
        // No streaming, no retries: the run line stays quiet about both.
        let line = r.to_string();
        assert!(!line.contains("flush retries"), "{line}");
        assert!(!line.contains("stream:"), "{line}");

        // Summaries carrying retry + delivery counters light them up.
        let mut s = TrackSummary {
            events: 1,
            triples: 10,
            store_bytes: 100,
            store_path: "/provio/prov_p0.nt".into(),
            degraded: false,
            last_error: None,
            dropped_flushes: 0,
            shed_batches: 0,
            shed_triples: 0,
            breaker_trips: 0,
            breaker_skipped: 0,
            breaker_state: "closed".into(),
            wal_records: 10,
            wal_commits: 2,
            wal_recycles: 1,
            flush_retries: 3,
            net_sent: 5,
            net_acked: 4,
            net_retries: 7,
            net_shed_batches: 1,
            net_shed_triples: 2,
            net_unacked: 1,
        };
        let mut r2 = RunReport::new(2);
        r2.attach_merge(2, &merge_report(2, 50));
        r2.attach_summaries(&[(0, s.clone()), (1, { s.flush_retries = 1; s })]);
        assert_eq!(r2.flush_retries, 4);
        assert_eq!(r2.net_sent, 10);
        assert_eq!(r2.net_unacked, 2);
        assert!(r2.streamed);
        r2.attach_delivery(&DeliveryReport {
            received_batches: 12,
            duplicate_batches: 3,
            out_of_order_batches: 1,
            refused_batches: 2,
            streamed_triples: 40,
            live_triples: 50,
            crashes: 1,
            resyncs: 1,
            resync_triples: 10,
        });
        let line = r2.to_string();
        assert!(line.contains("4 flush retries absorbed"), "{line}");
        assert!(line.contains("8/10 batches acked"), "{line}");
        assert!(line.contains("3 duplicates dropped"), "{line}");
        assert!(line.contains("2 unacked"), "{line}");
        assert!(line.contains("1 collector crash(es)"), "{line}");
        assert!(line.contains("recovering 10 triples"), "{line}");
    }

    #[test]
    fn trust_joins_the_run_report_orthogonally_to_completeness() {
        use crate::verify::FileCheck;
        let check = |verdict, path: &str| FileCheck {
            path: path.into(),
            verdict,
            detail: String::new(),
        };
        // Before any verify pass: unverified, never trusted.
        let mut r = RunReport::new(2);
        r.attach_merge(2, &merge_report(2, 50));
        assert!(r.is_complete());
        assert!(!r.is_trusted());
        assert!(r.to_string().contains("trust: unverified"), "{r}");

        // A clean signed run: complete AND trusted.
        let mut v = VerifyReport {
            dir: "/provio".into(),
            run: Some(7),
            manifest_present: true,
            manifest_ok: true,
            ledger_ok: true,
            checks: vec![
                check(FileVerdict::Verified, "/provio/prov_p0.nt"),
                check(FileVerdict::Verified, "/provio/prov_p1.nt"),
            ],
        };
        r.attach_verify(&v);
        assert!(r.is_trusted() && r.is_complete());
        assert_eq!(r.verified_files, 2);
        assert!(r.to_string().contains("trust: TRUSTED"), "{r}");

        // One tampered file: the merge saw nothing wrong (the forgery is
        // internally consistent), so the run stays complete — but trust is
        // gone, with file-level blast radius in the counters.
        v.checks[1] = check(FileVerdict::Tampered, "/provio/prov_p1.nt");
        r.attach_verify(&v);
        assert!(r.is_complete(), "a CRC-patched forgery merges cleanly");
        assert!(!r.is_trusted());
        assert_eq!((r.verified_files, r.tampered_files), (1, 1));
        let line = r.to_string();
        assert!(line.contains("NOT TRUSTED") && line.contains("1 tampered"), "{line}");

        // A legacy unsigned run: honest, but never trusted.
        let legacy = VerifyReport {
            dir: "/provio".into(),
            run: None,
            manifest_present: false,
            manifest_ok: false,
            ledger_ok: true,
            checks: vec![check(FileVerdict::Unsigned, "/provio/prov_p0.nt")],
        };
        r.attach_verify(&legacy);
        assert!(!r.is_trusted());
        assert_eq!(r.unsigned_files, 1);
        assert!(r.to_string().contains("manifest untrusted"), "{r}");
    }

    #[test]
    fn doctor_passes_a_healthy_graph() {
        let (g, ..) = healthy_graph();
        let report = doctor(&g);
        assert!(report.is_clean(), "unexpected findings: {report:?}");
        assert_eq!(report.checked_triples, g.len());
        assert_eq!(report.findings(), 0);
    }

    #[test]
    fn doctor_flags_orphans_duplicates_and_lost_agents() {
        let (mut g, file, _write, _agent) = healthy_graph();

        // 1. Orphan relation: edge to a GUID that was never recovered.
        let ghost = guid("Dataset.ghost");
        related(&mut g, &file, Relation::WasReadBy, &ghost);

        // 2. Activity with no associated agent.
        let lonely = guid("Read.p200.7");
        typed(&mut g, &lonely, ActivityClass::Read.into());

        // 3. GUID resolving to two classes.
        let clash = guid("File.clash");
        typed(&mut g, &clash, EntityClass::File.into());
        typed(&mut g, &clash, EntityClass::Dataset.into());

        let report = doctor(&g);
        assert!(!report.is_clean());
        assert_eq!(report.orphan_relations.len(), 1);
        assert!(report.orphan_relations[0].contains("wasReadBy"));
        assert!(report.orphan_relations[0].contains("Dataset.ghost"));
        assert_eq!(report.unassociated_activities, vec![lonely]);
        assert_eq!(report.duplicate_guids, vec![clash]);
        assert_eq!(report.findings(), 3);
    }

    #[test]
    fn doctor_ignores_non_resource_edge_targets() {
        // Membership-style edges point at class IRIs, not GUIDs; they must
        // not be reported as orphans.
        let (mut g, _file, write, _agent) = healthy_graph();
        g.insert(&Triple::new(
            write.to_subject(),
            Iri::new(Relation::WasMemberOf.iri()),
            Term::iri(format!("{}Activity", ns::PROV)),
        ));
        assert!(doctor(&g).is_clean());
    }
}
