//! The explicit PROV-IO APIs (paper §4.2: "a set of PROV-IO APIs which
//! enables users to convey user/workflow-specific semantics").
//!
//! Workflows that need more than transparent I/O capture — e.g. Top Reco
//! mapping hyperparameters to training accuracy — instrument their code
//! with these calls, exactly like the paper instruments the GNN training
//! loop. The facade also wires up a complete tracked process in one call
//! ([`ProvIoApi::attach`]), standing in for library initialization at
//! program start.

use crate::config::ProvIoConfig;
use crate::tracker::{ObjectDesc, ProvTracker, TrackerRegistry};
use crate::wrapper::PosixWrapper;
use provio_hpcfs::{FileSystem, FsSession};
use provio_model::Guid;
use std::sync::Arc;

/// Per-process handle to the explicit tracking APIs.
pub struct ProvIoApi {
    tracker: Arc<ProvTracker>,
}

impl ProvIoApi {
    pub fn new(tracker: Arc<ProvTracker>) -> Self {
        ProvIoApi { tracker }
    }

    /// Create a tracker for a process, register it with `registry`, hook
    /// the process's syscall dispatcher, and return the API handle.
    ///
    /// This is everything the paper's "little manual effort" amounts to:
    /// one call at process start.
    pub fn attach(
        config: Arc<ProvIoConfig>,
        fs: Arc<FileSystem>,
        session: &FsSession,
        registry: &Arc<TrackerRegistry>,
    ) -> Self {
        let tracker = ProvTracker::new(
            config,
            fs,
            session.pid(),
            session.user(),
            session.program(),
            session.clock().clone(),
        );
        registry.register(session.pid(), Arc::clone(&tracker));
        // Idempotent enough for our use: each session has its own dispatcher
        // in the workflows; registering the wrapper here makes POSIX capture
        // transparent for this process.
        session
            .dispatcher()
            .register(Arc::new(PosixWrapper::new(Arc::clone(registry))));
        ProvIoApi::new(tracker)
    }

    /// Record a (versioned) configuration value.
    pub fn track_configuration(&self, name: &str, value: &str) -> Option<Guid> {
        self.tracker.track_configuration(name, value)
    }

    /// Record a metric (attached to the current configuration versions).
    pub fn track_metric(&self, name: &str, value: f64) -> Option<Guid> {
        self.tracker.track_metric(name, value)
    }

    /// Record an explicit data derivation.
    pub fn track_derivation(&self, output: &ObjectDesc, input: &ObjectDesc) {
        self.tracker.track_derivation(output, input)
    }

    pub fn tracker(&self) -> &Arc<ProvTracker> {
        &self.tracker
    }

    /// Finish tracking for this process.
    pub fn finish(&self) -> crate::tracker::TrackSummary {
        self.tracker.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provio_hpcfs::{Dispatcher, LustreConfig};
    use provio_simrt::VirtualClock;
    use provio_model::ontology::nodes_of_class;
    use provio_model::{ClassSelector, ExtensibleClass};
    use provio_rdf::turtle;

    #[test]
    fn attach_wires_everything() {
        let fs = FileSystem::new(LustreConfig::default());
        let registry = TrackerRegistry::new();
        let session = FsSession::new(
            Arc::clone(&fs),
            33,
            "Alice",
            "topreco",
            VirtualClock::new(),
            Dispatcher::new(),
        );
        let cfg = ProvIoConfig::default()
            .with_selector(ClassSelector::all())
            .shared();
        let api = ProvIoApi::attach(cfg, Arc::clone(&fs), &session, &registry);

        // POSIX capture is live.
        session.write_file("/config.ini", b"[gnn]\nlr=0.01\n").unwrap();
        // Explicit APIs work.
        api.track_configuration("lr", "0.01").unwrap();
        api.track_metric("accuracy", 0.83).unwrap();

        let summary = api.finish();
        assert!(summary.events >= 1);
        let ino = fs.lookup(&summary.store_path).unwrap();
        let size = fs.stat(&summary.store_path).unwrap().size;
        let text = String::from_utf8(fs.read_at(ino, 0, size).unwrap().to_vec()).unwrap();
        let (g, _) = turtle::parse(&text).unwrap();
        assert_eq!(nodes_of_class(&g, ExtensibleClass::Configuration.into()).len(), 1);
        assert_eq!(nodes_of_class(&g, ExtensibleClass::Metrics.into()).len(), 1);
        assert!(!nodes_of_class(&g, provio_model::EntityClass::File.into()).is_empty());
    }
}
