//! The PROV-IO Lib Connector: a stacked HDF5 VOL connector.
//!
//! Follows the homomorphic design of the VOL-provenance connector the paper
//! builds on (§5): every native API has a counterpart here that (1)
//! forwards to the inner connector, (2) measures the native call's modeled
//! duration off the calling process's virtual clock, and (3) hands the
//! event to that process's [`crate::ProvTracker`]. A locked live-object table maps
//! open handles to their identities — the analog of the paper's "linked
//! list with locking support to achieve concurrency control on I/O
//! operations on the same data object".

use crate::tracker::{IoEvent, ObjectDesc, TrackerRegistry};
use parking_lot::Mutex;
use provio_hdf5::{
    Data, Dataspace, Datatype, H5Result, Handle, Hyperslab, ObjectInfo, ObjectKind, VolConnector,
};
use provio_hpcfs::FsSession;
use provio_model::{ActivityClass, EntityClass};
use std::collections::HashMap;
use std::sync::Arc;

/// Live-object table entry: everything needed to name the object in
/// provenance without re-querying the inner connector.
#[derive(Debug, Clone)]
struct LiveObject {
    desc: ObjectDesc,
}

/// The stacked provenance connector.
pub struct ProvIoVol {
    inner: Arc<dyn VolConnector>,
    registry: Arc<TrackerRegistry>,
    /// Handle → object identity, shared by all processes using this stack
    /// (handles are minted by the shared inner connector).
    live: Mutex<HashMap<Handle, LiveObject>>,
}

impl ProvIoVol {
    pub fn new(inner: Arc<dyn VolConnector>, registry: Arc<TrackerRegistry>) -> Arc<Self> {
        Arc::new(ProvIoVol {
            inner,
            registry,
            live: Mutex::new(HashMap::new()),
        })
    }

    pub fn registry(&self) -> &Arc<TrackerRegistry> {
        &self.registry
    }

    fn entity_class(kind: ObjectKind) -> EntityClass {
        match kind {
            ObjectKind::File => EntityClass::File,
            ObjectKind::Group => EntityClass::Group,
            ObjectKind::Dataset => EntityClass::Dataset,
            ObjectKind::Attribute => EntityClass::Attribute,
            ObjectKind::NamedDatatype => EntityClass::Datatype,
        }
    }

    fn desc_from_info(info: &ObjectInfo) -> ObjectDesc {
        if info.kind == ObjectKind::File {
            ObjectDesc::posix(EntityClass::File, info.file_path.clone())
        } else {
            ObjectDesc::hdf5(
                Self::entity_class(info.kind),
                info.file_path.clone(),
                info.object_path.clone(),
            )
        }
    }

    /// Remember a freshly created/opened handle's identity.
    fn remember(&self, handle: Handle) {
        if let Ok(info) = self.inner.object_info(handle) {
            self.live.lock().insert(
                handle,
                LiveObject {
                    desc: Self::desc_from_info(&info),
                },
            );
        }
    }

    fn lookup(&self, handle: Handle) -> Option<ObjectDesc> {
        self.live.lock().get(&handle).map(|l| l.desc.clone())
    }

    fn forget(&self, handle: Handle) -> Option<ObjectDesc> {
        self.live.lock().remove(&handle).map(|l| l.desc)
    }

    /// Record one event for the calling process.
    #[allow(clippy::too_many_arguments)]
    fn track(
        &self,
        s: &FsSession,
        activity: ActivityClass,
        api: &str,
        object: Option<ObjectDesc>,
        bytes: u64,
        duration_ns: u64,
        ok: bool,
    ) {
        if let Some(tracker) = self.registry.get(s.pid()) {
            tracker.track_io(&IoEvent {
                activity,
                api_name: api.to_string(),
                object,
                bytes,
                duration_ns,
                timestamp_ns: s.clock().now().as_nanos(),
                ok,
            });
        }
    }

    /// Run the native call, measuring its modeled duration.
    fn timed<T>(
        &self,
        s: &FsSession,
        f: impl FnOnce(&Arc<dyn VolConnector>) -> H5Result<T>,
    ) -> (H5Result<T>, u64) {
        let before = s.clock().now();
        let result = f(&self.inner);
        let duration = s.clock().now().elapsed_since(before).as_nanos();
        (result, duration)
    }
}

impl VolConnector for ProvIoVol {
    fn name(&self) -> &str {
        "provio"
    }

    fn file_create(&self, s: &FsSession, path: &str, truncate: bool) -> H5Result<Handle> {
        let (result, dur) = self.timed(s, |v| v.file_create(s, path, truncate));
        if let Ok(h) = &result {
            self.remember(*h);
        }
        self.track(
            s,
            ActivityClass::Create,
            "H5Fcreate",
            Some(ObjectDesc::posix(EntityClass::File, path)),
            0,
            dur,
            result.is_ok(),
        );
        result
    }

    fn file_open(&self, s: &FsSession, path: &str, write: bool) -> H5Result<Handle> {
        let (result, dur) = self.timed(s, |v| v.file_open(s, path, write));
        if let Ok(h) = &result {
            self.remember(*h);
        }
        self.track(
            s,
            ActivityClass::Open,
            "H5Fopen",
            Some(ObjectDesc::posix(EntityClass::File, path)),
            0,
            dur,
            result.is_ok(),
        );
        result
    }

    fn file_flush(&self, s: &FsSession, file: Handle) -> H5Result<()> {
        let obj = self.lookup(file);
        let (result, dur) = self.timed(s, |v| v.file_flush(s, file));
        self.track(s, ActivityClass::Fsync, "H5Fflush", obj, 0, dur, result.is_ok());
        result
    }

    fn file_close(&self, s: &FsSession, file: Handle) -> H5Result<()> {
        let result = self.inner.file_close(s, file);
        if result.is_ok() {
            self.forget(file);
        }
        // Close is not one of the model's six I/O API classes; nothing to
        // track (paper Table 2).
        result
    }

    fn group_create(&self, s: &FsSession, loc: Handle, name: &str) -> H5Result<Handle> {
        let (result, dur) = self.timed(s, |v| v.group_create(s, loc, name));
        let obj = result.as_ref().ok().copied().and_then(|h| {
            self.remember(h);
            self.lookup(h)
        });
        self.track(s, ActivityClass::Create, "H5Gcreate2", obj, 0, dur, result.is_ok());
        result
    }

    fn group_open(&self, s: &FsSession, loc: Handle, name: &str) -> H5Result<Handle> {
        let (result, dur) = self.timed(s, |v| v.group_open(s, loc, name));
        let obj = result.as_ref().ok().copied().and_then(|h| {
            self.remember(h);
            self.lookup(h)
        });
        self.track(s, ActivityClass::Open, "H5Gopen2", obj, 0, dur, result.is_ok());
        result
    }

    fn group_close(&self, s: &FsSession, group: Handle) -> H5Result<()> {
        let result = self.inner.group_close(s, group);
        if result.is_ok() {
            self.forget(group);
        }
        result
    }

    fn dataset_create(
        &self,
        s: &FsSession,
        loc: Handle,
        name: &str,
        dtype: Datatype,
        space: Dataspace,
    ) -> H5Result<Handle> {
        let (result, dur) = self.timed(s, |v| v.dataset_create(s, loc, name, dtype, space));
        let obj = result.as_ref().ok().copied().and_then(|h| {
            self.remember(h);
            self.lookup(h)
        });
        self.track(s, ActivityClass::Create, "H5Dcreate2", obj, 0, dur, result.is_ok());
        result
    }

    fn dataset_open(&self, s: &FsSession, loc: Handle, name: &str) -> H5Result<Handle> {
        let (result, dur) = self.timed(s, |v| v.dataset_open(s, loc, name));
        let obj = result.as_ref().ok().copied().and_then(|h| {
            self.remember(h);
            self.lookup(h)
        });
        self.track(s, ActivityClass::Open, "H5Dopen2", obj, 0, dur, result.is_ok());
        result
    }

    fn dataset_extend(&self, s: &FsSession, dset: Handle, new_dims: &[u64]) -> H5Result<()> {
        let obj = self.lookup(dset);
        let (result, dur) = self.timed(s, |v| v.dataset_extend(s, dset, new_dims));
        self.track(s, ActivityClass::Write, "H5Dset_extent", obj, 0, dur, result.is_ok());
        result
    }

    fn dataset_write(
        &self,
        s: &FsSession,
        dset: Handle,
        sel: &Hyperslab,
        data: &Data,
    ) -> H5Result<()> {
        let obj = self.lookup(dset);
        let (result, dur) = self.timed(s, |v| v.dataset_write(s, dset, sel, data));
        self.track(
            s,
            ActivityClass::Write,
            "H5Dwrite",
            obj,
            data.len(),
            dur,
            result.is_ok(),
        );
        result
    }

    fn dataset_read(&self, s: &FsSession, dset: Handle, sel: &Hyperslab) -> H5Result<Data> {
        let obj = self.lookup(dset);
        let (result, dur) = self.timed(s, |v| v.dataset_read(s, dset, sel));
        let bytes = result.as_ref().map(|d| d.len()).unwrap_or(0);
        self.track(
            s,
            ActivityClass::Read,
            "H5Dread",
            obj,
            bytes,
            dur,
            result.is_ok(),
        );
        result
    }

    fn dataset_close(&self, s: &FsSession, dset: Handle) -> H5Result<()> {
        let result = self.inner.dataset_close(s, dset);
        if result.is_ok() {
            self.forget(dset);
        }
        result
    }

    fn attr_create(
        &self,
        s: &FsSession,
        loc: Handle,
        name: &str,
        dtype: Datatype,
        value: &[u8],
    ) -> H5Result<Handle> {
        let vlen = value.len() as u64;
        let (result, dur) = self.timed(s, |v| v.attr_create(s, loc, name, dtype, value));
        let obj = result.as_ref().ok().copied().and_then(|h| {
            self.remember(h);
            self.lookup(h)
        });
        self.track(s, ActivityClass::Create, "H5Acreate2", obj, vlen, dur, result.is_ok());
        result
    }

    fn attr_open(&self, s: &FsSession, loc: Handle, name: &str) -> H5Result<Handle> {
        let (result, dur) = self.timed(s, |v| v.attr_open(s, loc, name));
        let obj = result.as_ref().ok().copied().and_then(|h| {
            self.remember(h);
            self.lookup(h)
        });
        self.track(s, ActivityClass::Open, "H5Aopen", obj, 0, dur, result.is_ok());
        result
    }

    fn attr_read(&self, s: &FsSession, attr: Handle) -> H5Result<Vec<u8>> {
        let obj = self.lookup(attr);
        let (result, dur) = self.timed(s, |v| v.attr_read(s, attr));
        let bytes = result.as_ref().map(|v| v.len() as u64).unwrap_or(0);
        self.track(s, ActivityClass::Read, "H5Aread", obj, bytes, dur, result.is_ok());
        result
    }

    fn attr_write(&self, s: &FsSession, attr: Handle, value: &[u8]) -> H5Result<()> {
        let obj = self.lookup(attr);
        let (result, dur) = self.timed(s, |v| v.attr_write(s, attr, value));
        self.track(
            s,
            ActivityClass::Write,
            "H5Awrite",
            obj,
            value.len() as u64,
            dur,
            result.is_ok(),
        );
        result
    }

    fn attr_close(&self, s: &FsSession, attr: Handle) -> H5Result<()> {
        let result = self.inner.attr_close(s, attr);
        if result.is_ok() {
            self.forget(attr);
        }
        result
    }

    fn attr_list(&self, s: &FsSession, loc: Handle) -> H5Result<Vec<String>> {
        self.inner.attr_list(s, loc)
    }

    fn datatype_commit(
        &self,
        s: &FsSession,
        loc: Handle,
        name: &str,
        dtype: Datatype,
    ) -> H5Result<Handle> {
        let (result, dur) = self.timed(s, |v| v.datatype_commit(s, loc, name, dtype));
        let obj = result.as_ref().ok().copied().and_then(|h| {
            self.remember(h);
            self.lookup(h)
        });
        self.track(s, ActivityClass::Create, "H5Tcommit2", obj, 0, dur, result.is_ok());
        result
    }

    fn datatype_open(&self, s: &FsSession, loc: Handle, name: &str) -> H5Result<Handle> {
        let (result, dur) = self.timed(s, |v| v.datatype_open(s, loc, name));
        let obj = result.as_ref().ok().copied().and_then(|h| {
            self.remember(h);
            self.lookup(h)
        });
        self.track(s, ActivityClass::Open, "H5Topen2", obj, 0, dur, result.is_ok());
        result
    }

    fn datatype_close(&self, s: &FsSession, dtype: Handle) -> H5Result<()> {
        let result = self.inner.datatype_close(s, dtype);
        if result.is_ok() {
            self.forget(dtype);
        }
        result
    }

    fn link_create_soft(
        &self,
        s: &FsSession,
        loc: Handle,
        target: &str,
        name: &str,
    ) -> H5Result<()> {
        let (result, dur) = self.timed(s, |v| v.link_create_soft(s, loc, target, name));
        // Name the link entity inside the containing file if known.
        let obj = self.lookup(loc).map(|d| {
            let file = if d.scope.is_empty() { d.path } else { d.scope };
            ObjectDesc::hdf5(EntityClass::Link, file, format!("/{name}"))
        });
        self.track(
            s,
            ActivityClass::Create,
            "H5Lcreate_soft",
            obj,
            0,
            dur,
            result.is_ok(),
        );
        result
    }

    fn link_delete(&self, s: &FsSession, loc: Handle, name: &str) -> H5Result<()> {
        let (result, dur) = self.timed(s, |v| v.link_delete(s, loc, name));
        let obj = self.lookup(loc).map(|d| {
            let file = if d.scope.is_empty() { d.path } else { d.scope };
            ObjectDesc::hdf5(EntityClass::Link, file, format!("/{name}"))
        });
        self.track(
            s,
            ActivityClass::Rename,
            "H5Ldelete",
            obj,
            0,
            dur,
            result.is_ok(),
        );
        result
    }

    fn link_exists(&self, s: &FsSession, loc: Handle, name: &str) -> H5Result<bool> {
        self.inner.link_exists(s, loc, name)
    }

    fn link_list(&self, s: &FsSession, loc: Handle) -> H5Result<Vec<String>> {
        self.inner.link_list(s, loc)
    }

    fn object_info(&self, handle: Handle) -> H5Result<ObjectInfo> {
        self.inner.object_info(handle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProvIoConfig;
    use crate::tracker::ProvTracker;
    use provio_hdf5::{NativeVol, H5};
    use provio_hpcfs::{Dispatcher, FileSystem, LustreConfig};
    use provio_model::ontology::nodes_of_class;
    use provio_rdf::turtle;
    use provio_simrt::VirtualClock;

    struct Rig {
        fs: Arc<FileSystem>,
        h5: H5,
        tracker: Arc<ProvTracker>,
    }

    fn rig() -> Rig {
        let fs = FileSystem::new(LustreConfig::default());
        let native: Arc<dyn VolConnector> = Arc::new(NativeVol::new(Arc::clone(&fs)));
        let registry = TrackerRegistry::new();
        let clock = VirtualClock::new();
        let tracker = ProvTracker::new(
            ProvIoConfig::default().shared(),
            Arc::clone(&fs),
            42,
            "Bob",
            "vpicio_uni_h5",
            clock.clone(),
        );
        registry.register(42, Arc::clone(&tracker));
        let vol = ProvIoVol::new(native, registry);
        let session = Arc::new(FsSession::new(
            Arc::clone(&fs),
            42,
            "Bob",
            "vpicio_uni_h5",
            clock,
            Dispatcher::new(),
        ));
        Rig {
            fs,
            h5: H5::new(session, vol),
            tracker,
        }
    }

    fn graph_of(rig: &Rig) -> provio_rdf::Graph {
        let summary = rig.tracker.finish();
        let ino = rig.fs.lookup(&summary.store_path).unwrap();
        let size = rig.fs.stat(&summary.store_path).unwrap().size;
        let text =
            String::from_utf8(rig.fs.read_at(ino, 0, size).unwrap().to_vec()).unwrap();
        turtle::parse(&text).unwrap().0
    }

    #[test]
    fn transparent_capture_of_h5_workflow() {
        let r = rig();
        let f = r.h5.create_file("/out.h5").unwrap();
        let g = r.h5.create_group(f, "Timestep_0").unwrap();
        let d = r
            .h5
            .write_dataset_full(
                g,
                "x",
                provio_hdf5::Datatype::Float64,
                &[8],
                &Data::from_f64s(&[0.0; 8]),
            )
            .unwrap();
        r.h5.create_attr(d, "units", provio_hdf5::Datatype::VarString, b"m")
            .unwrap();
        let back = r.h5.read(d, &Hyperslab::new(&[0], &[8])).unwrap();
        assert_eq!(back.len(), 64);
        r.h5.close_dataset(d).unwrap();
        r.h5.close_group(g).unwrap();
        r.h5.close_file(f).unwrap();

        assert!(r.tracker.event_count() >= 5);
        let graph = graph_of(&r);
        use provio_model::{ActivityClass as A, EntityClass as E};
        assert_eq!(nodes_of_class(&graph, E::File.into()).len(), 1);
        assert_eq!(nodes_of_class(&graph, E::Group.into()).len(), 1);
        assert_eq!(nodes_of_class(&graph, E::Dataset.into()).len(), 1);
        assert_eq!(nodes_of_class(&graph, E::Attribute.into()).len(), 1);
        assert!(!nodes_of_class(&graph, A::Create.into()).is_empty());
        assert!(!nodes_of_class(&graph, A::Write.into()).is_empty());
        assert!(!nodes_of_class(&graph, A::Read.into()).is_empty());
    }

    #[test]
    fn native_semantics_preserved_under_stacking() {
        // The same operations must produce identical data with and without
        // the provenance connector.
        let r = rig();
        let f = r.h5.create_file("/same.h5").unwrap();
        let d = r
            .h5
            .write_dataset_full(
                f,
                "v",
                provio_hdf5::Datatype::Float64,
                &[4],
                &Data::from_f64s(&[1.0, 2.0, 3.0, 4.0]),
            )
            .unwrap();
        let got = r.h5.read(d, &Hyperslab::new(&[1], &[2])).unwrap();
        assert_eq!(got.to_f64s().unwrap(), vec![2.0, 3.0]);
    }

    #[test]
    fn flush_tracked_as_fsync_class() {
        let r = rig();
        let f = r.h5.create_file("/flush.h5").unwrap();
        r.h5.flush(f).unwrap();
        let graph = graph_of(&r);
        let fsyncs = nodes_of_class(&graph, provio_model::ActivityClass::Fsync.into());
        assert_eq!(fsyncs.len(), 1);
    }

    #[test]
    fn untracked_process_passes_through() {
        // A session whose pid has no registered tracker gets native
        // behavior, no provenance, no errors.
        let fs = FileSystem::new(LustreConfig::default());
        let native: Arc<dyn VolConnector> = Arc::new(NativeVol::new(Arc::clone(&fs)));
        let vol = ProvIoVol::new(native, TrackerRegistry::new());
        let session = Arc::new(FsSession::new(
            Arc::clone(&fs),
            7,
            "Eve",
            "untracked",
            VirtualClock::new(),
            Dispatcher::new(),
        ));
        let h5 = H5::new(session, vol);
        let f = h5.create_file("/quiet.h5").unwrap();
        h5.close_file(f).unwrap();
        assert!(fs.walk_files("/provio").is_err(), "no store dir created");
    }

    #[test]
    fn failed_native_calls_tracked_as_failures_not_events() {
        let r = rig();
        assert!(r.h5.open_file("/missing.h5", false).is_err());
        // Failed events are dropped by the tracker.
        assert_eq!(r.tracker.event_count(), 0);
    }

    #[test]
    fn live_table_survives_concurrent_use() {
        let r = rig();
        let f = r.h5.create_file("/conc.h5").unwrap();
        let handles: Vec<Handle> = (0..16)
            .map(|i| {
                r.h5.write_dataset_full(
                    f,
                    &format!("d{i}"),
                    provio_hdf5::Datatype::Int64,
                    &[4],
                    &Data::synthetic(32),
                )
                .unwrap()
            })
            .collect();
        for h in handles {
            r.h5.close_dataset(h).unwrap();
        }
        let graph = graph_of(&r);
        assert_eq!(
            nodes_of_class(&graph, provio_model::EntityClass::Dataset.into()).len(),
            16
        );
    }
}
