//! The Provenance Store: durable, per-process RDF sub-graphs.
//!
//! Each tracked process owns one store writing a unique file under the
//! configured directory on the parallel file system — "PROV-IO maintains an
//! in-memory sub-graph for each process and lets the process serialize its
//! own sub-graph to a unique RDF file on disk" (paper §5). Serialization is
//! asynchronous by default: batches are applied by a small shared writer
//! pool (thousands of per-rank stores may be live at H5bench scale, so a
//! thread per store would exhaust the host), and the workflow's critical
//! path only pays for enqueueing. The synchronous mode exists as the
//! ablation the paper's design argues against.

use crate::config::RdfFormat;
use parking_lot::Mutex;
use provio_hpcfs::FileSystem;
use provio_rdf::{ntriples, turtle, Graph, Namespaces, Triple};
use provio_simrt::{ChargeGuard, SimTime, VirtualClock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The shared background writer pool.
mod pool {
    use crossbeam::channel::{unbounded, Sender};
    use std::sync::OnceLock;

    pub type Job = Box<dyn FnOnce() + Send>;

    fn sender() -> &'static Sender<Job> {
        static TX: OnceLock<Sender<Job>> = OnceLock::new();
        TX.get_or_init(|| {
            let (tx, rx) = unbounded::<Job>();
            let workers = std::thread::available_parallelism()
                .map(|n| n.get().clamp(2, 8))
                .unwrap_or(2);
            for i in 0..workers {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("provio-store-{i}"))
                    .stack_size(512 * 1024)
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("spawn provenance store pool worker");
            }
            tx
        })
    }

    pub fn submit(job: Job) {
        let _ = sender().send(job);
    }
}

struct Writer {
    fs: Arc<FileSystem>,
    path: String,
    format: RdfFormat,
    graph: Graph,
}

impl Writer {
    fn write_out(&self) -> u64 {
        let text = match self.format {
            RdfFormat::Turtle => turtle::serialize(&self.graph, &Namespaces::standard()),
            RdfFormat::NTriples => ntriples::serialize(&self.graph),
        };
        let bytes = text.as_bytes();
        let now = SimTime::ZERO; // store-internal write; mtime is irrelevant
        let Ok(ino) = self.fs.create_file(&self.path, false, "provio", now) else {
            return 0; // store location unusable; report nothing durable
        };
        if self.fs.truncate_ino(ino, 0, now).is_err()
            || self.fs.write_at(ino, 0, bytes, now).is_err()
        {
            return 0;
        }
        bytes.len() as u64
    }
}

/// A per-process provenance sink.
pub struct ProvenanceStore {
    writer: Arc<Mutex<Writer>>,
    /// Background jobs submitted but not yet completed.
    in_flight: Arc<AtomicU64>,
    async_store: bool,
    fs: Arc<FileSystem>,
    path: String,
    triples_pushed: Mutex<u64>,
}

impl ProvenanceStore {
    /// Create a store writing `path` on `fs`. `async_store` selects the
    /// background-pool mode.
    pub fn new(
        fs: Arc<FileSystem>,
        path: impl Into<String>,
        format: RdfFormat,
        async_store: bool,
    ) -> Self {
        let path = path.into();
        // Ensure the parent directory exists.
        if let Some((dir, _)) = path.rsplit_once('/') {
            if !dir.is_empty() {
                let _ = fs.mkdir_all(dir, "provio", SimTime::ZERO);
            }
        }
        let writer = Writer {
            fs: Arc::clone(&fs),
            path: path.clone(),
            format,
            graph: Graph::new(),
        };
        ProvenanceStore {
            writer: Arc::new(Mutex::new(writer)),
            in_flight: Arc::new(AtomicU64::new(0)),
            async_store,
            fs,
            path,
            triples_pushed: Mutex::new(0),
        }
    }

    /// The store file's path on the parallel file system.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Hand a batch of triples to the store.
    ///
    /// Async mode: enqueue to the shared pool. Sync mode: insert on the
    /// caller's time (pass the issuing process's clock so the cost lands on
    /// the workflow — exactly the ablation's point).
    pub fn push(&self, triples: Vec<Triple>, charge: Option<&VirtualClock>) {
        *self.triples_pushed.lock() += triples.len() as u64;
        if self.async_store {
            let writer = Arc::clone(&self.writer);
            let in_flight = Arc::clone(&self.in_flight);
            in_flight.fetch_add(1, Ordering::AcqRel);
            pool::submit(Box::new(move || {
                {
                    let mut w = writer.lock();
                    for t in &triples {
                        w.graph.insert(t);
                    }
                }
                in_flight.fetch_sub(1, Ordering::AcqRel);
            }));
        } else {
            let _guard = charge.map(ChargeGuard::new);
            let mut w = self.writer.lock();
            for t in &triples {
                w.graph.insert(t);
            }
        }
    }

    /// Wait until all enqueued batches for this store have been applied.
    fn drain(&self) {
        while self.in_flight.load(Ordering::Acquire) != 0 {
            std::thread::yield_now();
        }
    }

    /// Request an intermediate serialization (periodic policy).
    pub fn flush(&self, charge: Option<&VirtualClock>) {
        if self.async_store {
            let writer = Arc::clone(&self.writer);
            let in_flight = Arc::clone(&self.in_flight);
            in_flight.fetch_add(1, Ordering::AcqRel);
            pool::submit(Box::new(move || {
                writer.lock().write_out();
                in_flight.fetch_sub(1, Ordering::AcqRel);
            }));
        } else {
            let _guard = charge.map(ChargeGuard::new);
            self.writer.lock().write_out();
        }
    }

    /// Final flush; blocks until the sub-graph file is durable and returns
    /// its size in bytes.
    pub fn finish(&self, charge: Option<&VirtualClock>) -> u64 {
        if self.async_store {
            self.drain();
            self.writer.lock().write_out()
        } else {
            let _guard = charge.map(ChargeGuard::new);
            self.writer.lock().write_out()
        }
    }

    /// Current size of the store file on the parallel file system.
    pub fn size_bytes(&self) -> u64 {
        self.fs.stat(&self.path).map(|m| m.size).unwrap_or(0)
    }

    /// Triples pushed so far (pre-dedup).
    pub fn triples_pushed(&self) -> u64 {
        *self.triples_pushed.lock()
    }
}

impl Drop for ProvenanceStore {
    fn drop(&mut self) {
        // Make sure buffered batches land even if `finish` was never called
        // (e.g. a process crashed before MPI_Finalize).
        if self.async_store {
            self.drain();
            self.writer.lock().write_out();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provio_hpcfs::LustreConfig;
    use provio_rdf::{Iri, Subject, Term};

    fn triples(n: usize) -> Vec<Triple> {
        (0..n)
            .map(|i| {
                Triple::new(
                    Subject::iri(format!("urn:s{i}")),
                    Iri::new("urn:p"),
                    Term::iri("urn:o"),
                )
            })
            .collect()
    }

    #[test]
    fn sync_store_round_trip() {
        let fs = FileSystem::new(LustreConfig::default());
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/p1.ttl", RdfFormat::Turtle, false);
        st.push(triples(5), None);
        let bytes = st.finish(None);
        assert!(bytes > 0);
        assert_eq!(st.size_bytes(), bytes);
        let text = String::from_utf8(fs_read(&fs, "/prov/p1.ttl")).unwrap();
        let (g, _) = turtle::parse(&text).unwrap();
        assert_eq!(g.len(), 5);
    }

    #[test]
    fn async_store_round_trip() {
        let fs = FileSystem::new(LustreConfig::default());
        let st =
            ProvenanceStore::new(Arc::clone(&fs), "/prov/p2.nt", RdfFormat::NTriples, true);
        st.push(triples(100), None);
        st.push(triples(100), None); // duplicates collapse in the graph
        let bytes = st.finish(None);
        assert!(bytes > 0);
        let text = String::from_utf8(fs_read(&fs, "/prov/p2.nt")).unwrap();
        let g = ntriples::parse(&text).unwrap();
        assert_eq!(g.len(), 100);
        assert_eq!(st.triples_pushed(), 200);
    }

    #[test]
    fn intermediate_flush_writes_file() {
        let fs = FileSystem::new(LustreConfig::default());
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/p3.nt", RdfFormat::NTriples, false);
        st.push(triples(3), None);
        st.flush(None);
        assert!(st.size_bytes() > 0);
        st.push(triples(10), None);
        st.finish(None);
        let text = String::from_utf8(fs_read(&fs, "/prov/p3.nt")).unwrap();
        assert_eq!(ntriples::parse(&text).unwrap().len(), 10);
    }

    #[test]
    fn double_finish_is_safe() {
        let fs = FileSystem::new(LustreConfig::default());
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/p4.ttl", RdfFormat::Turtle, true);
        st.push(triples(2), None);
        let a = st.finish(None);
        let b = st.finish(None);
        assert_eq!(a, b);
    }

    #[test]
    fn sync_push_charges_caller_clock() {
        let fs = FileSystem::new(LustreConfig::default());
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/p5.ttl", RdfFormat::Turtle, false);
        let clock = VirtualClock::new();
        st.push(triples(1000), Some(&clock));
        assert!(clock.now().as_nanos() > 0, "sync mode bills the workflow");
    }

    #[test]
    fn thousands_of_stores_share_the_pool() {
        // The H5bench regression: many live stores must not exhaust host
        // threads. 2000 stores, a few triples each.
        let fs = FileSystem::new(LustreConfig::default());
        let stores: Vec<ProvenanceStore> = (0..2000)
            .map(|i| {
                let st = ProvenanceStore::new(
                    Arc::clone(&fs),
                    format!("/prov/many/p{i}.nt"),
                    RdfFormat::NTriples,
                    true,
                );
                st.push(triples(3), None);
                st
            })
            .collect();
        for st in &stores {
            assert!(st.finish(None) > 0);
        }
        assert_eq!(fs.walk_files("/prov/many").unwrap().len(), 2000);
    }

    fn fs_read(fs: &Arc<FileSystem>, path: &str) -> Vec<u8> {
        let ino = fs.lookup(path).unwrap();
        let size = fs.stat(path).unwrap().size;
        fs.read_at(ino, 0, size).unwrap().to_vec()
    }
}
