//! The Provenance Store: durable, per-process RDF sub-graphs.
//!
//! Each tracked process owns one store writing a unique file under the
//! configured directory on the parallel file system — "PROV-IO maintains an
//! in-memory sub-graph for each process and lets the process serialize its
//! own sub-graph to a unique RDF file on disk" (paper §5). Serialization is
//! asynchronous by default: batches are applied by a small shared writer
//! pool (thousands of per-rank stores may be live at H5bench scale, so a
//! thread per store would exhaust the host), and the workflow's critical
//! path only pays for enqueueing. The synchronous mode exists as the
//! ablation the paper's design argues against.
//!
//! # Crash consistency
//!
//! A flush never writes the committed path in place. The sub-graph is
//! serialized to `<path>.tmp`, then atomically renamed over `<path>` —
//! so a torn write or mid-flush crash can only ever corrupt the tmp file,
//! and a reader (the post-run merge) either sees the previous complete
//! sub-graph or the new complete sub-graph, never a prefix. Transient
//! errors (`EIO`, `ENOSPC`) are retried under a [`RetryPolicy`] with
//! exponential backoff charged to the issuing rank's virtual clock;
//! permanent or exhausted failures flip the store into a *degraded* state:
//! the in-memory graph is kept, the dropped flush is counted, and the
//! last error is surfaced through the tracker summary instead of being
//! silently reported as zero stored bytes.

use crate::config::{RdfFormat, RetryPolicy};
use parking_lot::{Condvar, Mutex};
use provio_hpcfs::{FileSystem, FsError};
use provio_rdf::{ntriples, turtle, Graph, Namespaces, Triple};
use provio_simrt::{ChargeGuard, SimDuration, SimTime, VirtualClock};
use std::sync::Arc;

/// The shared background writer pool.
mod pool {
    use crossbeam::channel::{unbounded, Sender};
    use std::sync::OnceLock;

    pub type Job = Box<dyn FnOnce() + Send>;

    fn sender() -> &'static Sender<Job> {
        static TX: OnceLock<Sender<Job>> = OnceLock::new();
        TX.get_or_init(|| {
            let (tx, rx) = unbounded::<Job>();
            let workers = std::thread::available_parallelism()
                .map(|n| n.get().clamp(2, 8))
                .unwrap_or(2);
            for i in 0..workers {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("provio-store-{i}"))
                    .stack_size(512 * 1024)
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("spawn provenance store pool worker");
            }
            tx
        })
    }

    pub fn submit(job: Job) {
        let _ = sender().send(job);
    }
}

/// Outstanding background jobs, with a real wait instead of a spin loop.
struct InFlight {
    count: Mutex<u64>,
    zero: Condvar,
}

impl InFlight {
    fn new() -> Self {
        InFlight {
            count: Mutex::new(0),
            zero: Condvar::new(),
        }
    }

    fn inc(&self) {
        *self.count.lock() += 1;
    }

    fn dec(&self) {
        let mut c = self.count.lock();
        *c -= 1;
        if *c == 0 {
            self.zero.notify_all();
        }
    }

    fn wait_zero(&self) {
        let mut c = self.count.lock();
        while *c != 0 {
            self.zero.wait(&mut c);
        }
    }
}

struct Writer {
    fs: Arc<FileSystem>,
    path: String,
    tmp_path: String,
    format: RdfFormat,
    graph: Graph,
    retry: RetryPolicy,
    /// Last flush failed permanently; the in-memory graph is still intact.
    degraded: bool,
    /// A crash point fired mid-flush: this writer's process is dead. No
    /// further writes are attempted (recovery belongs to the merge layer).
    crashed: bool,
    dropped_flushes: u64,
    last_error: Option<FsError>,
}

impl Writer {
    /// One serialization attempt, crash-consistently: write everything to
    /// the tmp path, then atomically rename it over the committed path.
    fn try_commit(&self, bytes: &[u8]) -> Result<(), FsError> {
        let now = SimTime::ZERO; // store-internal write; mtime is irrelevant
        let ino = self.fs.create_file(&self.tmp_path, false, "provio", now)?;
        self.fs.truncate_ino(ino, 0, now)?;
        self.fs.write_at(ino, 0, bytes, now)?;
        self.fs.rename(&self.tmp_path, &self.path, now)
    }

    /// Serialize the sub-graph durably. Returns committed bytes, or 0 when
    /// the flush was dropped — in which case `degraded`/`last_error` say
    /// why (never a silent zero).
    fn write_out(&mut self, charge: Option<&VirtualClock>) -> u64 {
        if self.crashed {
            self.dropped_flushes += 1;
            return 0;
        }
        let text = match self.format {
            RdfFormat::Turtle => turtle::serialize(&self.graph, &Namespaces::standard()),
            RdfFormat::NTriples => ntriples::serialize(&self.graph),
        };
        let bytes = text.as_bytes();
        let mut failures = 0u32;
        loop {
            match self.try_commit(bytes) {
                Ok(()) => {
                    self.degraded = false;
                    return bytes.len() as u64;
                }
                Err(FsError::Crashed) => {
                    // The process died mid-flush: no retry, no cleanup.
                    // A leftover tmp prefix is salvaged at merge time.
                    self.crashed = true;
                    self.degraded = true;
                    self.last_error = Some(FsError::Crashed);
                    self.dropped_flushes += 1;
                    return 0;
                }
                Err(e) => {
                    failures += 1;
                    self.last_error = Some(e);
                    if e.is_transient() && failures < self.retry.max_attempts {
                        if let Some(clock) = charge {
                            clock.advance(SimDuration::from_nanos(
                                self.retry.backoff_for(failures),
                            ));
                        }
                        continue;
                    }
                    self.degraded = true;
                    self.dropped_flushes += 1;
                    return 0;
                }
            }
        }
    }
}

/// A per-process provenance sink.
pub struct ProvenanceStore {
    writer: Arc<Mutex<Writer>>,
    /// Background jobs submitted but not yet completed.
    in_flight: Arc<InFlight>,
    async_store: bool,
    fs: Arc<FileSystem>,
    path: String,
    triples_pushed: Mutex<u64>,
}

impl ProvenanceStore {
    /// Create a store writing `path` on `fs`. `async_store` selects the
    /// background-pool mode.
    pub fn new(
        fs: Arc<FileSystem>,
        path: impl Into<String>,
        format: RdfFormat,
        async_store: bool,
    ) -> Self {
        let path = path.into();
        // Ensure the parent directory exists.
        if let Some((dir, _)) = path.rsplit_once('/') {
            if !dir.is_empty() {
                let _ = fs.mkdir_all(dir, "provio", SimTime::ZERO);
            }
        }
        let writer = Writer {
            fs: Arc::clone(&fs),
            path: path.clone(),
            tmp_path: format!("{path}.tmp"),
            format,
            graph: Graph::new(),
            retry: RetryPolicy::default(),
            degraded: false,
            crashed: false,
            dropped_flushes: 0,
            last_error: None,
        };
        ProvenanceStore {
            writer: Arc::new(Mutex::new(writer)),
            in_flight: Arc::new(InFlight::new()),
            async_store,
            fs,
            path,
            triples_pushed: Mutex::new(0),
        }
    }

    /// Override the flush retry/backoff policy.
    pub fn with_retry(self, retry: RetryPolicy) -> Self {
        self.writer.lock().retry = retry;
        self
    }

    /// The store file's path on the parallel file system.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Hand a batch of triples to the store.
    ///
    /// Async mode: enqueue to the shared pool. Sync mode: insert on the
    /// caller's time (pass the issuing process's clock so the cost lands on
    /// the workflow — exactly the ablation's point).
    pub fn push(&self, triples: Vec<Triple>, charge: Option<&VirtualClock>) {
        *self.triples_pushed.lock() += triples.len() as u64;
        if self.async_store {
            let writer = Arc::clone(&self.writer);
            let in_flight = Arc::clone(&self.in_flight);
            in_flight.inc();
            pool::submit(Box::new(move || {
                {
                    let mut w = writer.lock();
                    for t in &triples {
                        w.graph.insert(t);
                    }
                }
                in_flight.dec();
            }));
        } else {
            let _guard = charge.map(ChargeGuard::new);
            let mut w = self.writer.lock();
            for t in &triples {
                w.graph.insert(t);
            }
        }
    }

    /// Wait until all enqueued batches for this store have been applied.
    fn drain(&self) {
        self.in_flight.wait_zero();
    }

    /// Request an intermediate serialization (periodic policy).
    pub fn flush(&self, charge: Option<&VirtualClock>) {
        if self.async_store {
            let writer = Arc::clone(&self.writer);
            let in_flight = Arc::clone(&self.in_flight);
            in_flight.inc();
            pool::submit(Box::new(move || {
                writer.lock().write_out(None);
                in_flight.dec();
            }));
        } else {
            let _guard = charge.map(ChargeGuard::new);
            self.writer.lock().write_out(charge);
        }
    }

    /// Final flush; blocks until the sub-graph file is durable and returns
    /// its size in bytes (0 if the store is degraded — see
    /// [`Self::degraded`] / [`Self::last_error`]).
    pub fn finish(&self, charge: Option<&VirtualClock>) -> u64 {
        if self.async_store {
            self.drain();
            self.writer.lock().write_out(None)
        } else {
            let _guard = charge.map(ChargeGuard::new);
            self.writer.lock().write_out(charge)
        }
    }

    /// Did the last flush fail (graph kept in memory, bytes not durable)?
    pub fn degraded(&self) -> bool {
        self.writer.lock().degraded
    }

    /// The most recent flush error, if any (survives a later success, as a
    /// record of retried trouble).
    pub fn last_error(&self) -> Option<FsError> {
        self.writer.lock().last_error
    }

    /// Flushes dropped after retry exhaustion, permanent error, or crash.
    pub fn dropped_flushes(&self) -> u64 {
        self.writer.lock().dropped_flushes
    }

    /// Current size of the store file on the parallel file system.
    pub fn size_bytes(&self) -> u64 {
        self.fs.stat(&self.path).map(|m| m.size).unwrap_or(0)
    }

    /// Triples pushed so far (pre-dedup).
    pub fn triples_pushed(&self) -> u64 {
        *self.triples_pushed.lock()
    }
}

impl Drop for ProvenanceStore {
    fn drop(&mut self) {
        // Make sure buffered batches land even if `finish` was never called
        // (e.g. a process crashed before MPI_Finalize).
        if self.async_store {
            self.drain();
            self.writer.lock().write_out(None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provio_hpcfs::{FaultOp, FaultPlan, FaultRule, LustreConfig};
    use provio_rdf::{Iri, Subject, Term};

    fn triples(n: usize) -> Vec<Triple> {
        (0..n)
            .map(|i| {
                Triple::new(
                    Subject::iri(format!("urn:s{i}")),
                    Iri::new("urn:p"),
                    Term::iri("urn:o"),
                )
            })
            .collect()
    }

    #[test]
    fn sync_store_round_trip() {
        let fs = FileSystem::new(LustreConfig::default());
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/p1.ttl", RdfFormat::Turtle, false);
        st.push(triples(5), None);
        let bytes = st.finish(None);
        assert!(bytes > 0);
        assert_eq!(st.size_bytes(), bytes);
        let text = String::from_utf8(fs_read(&fs, "/prov/p1.ttl")).unwrap();
        let (g, _) = turtle::parse(&text).unwrap();
        assert_eq!(g.len(), 5);
        assert!(!st.degraded());
        assert_eq!(st.last_error(), None);
    }

    #[test]
    fn async_store_round_trip() {
        let fs = FileSystem::new(LustreConfig::default());
        let st =
            ProvenanceStore::new(Arc::clone(&fs), "/prov/p2.nt", RdfFormat::NTriples, true);
        st.push(triples(100), None);
        st.push(triples(100), None); // duplicates collapse in the graph
        let bytes = st.finish(None);
        assert!(bytes > 0);
        let text = String::from_utf8(fs_read(&fs, "/prov/p2.nt")).unwrap();
        let g = ntriples::parse(&text).unwrap();
        assert_eq!(g.len(), 100);
        assert_eq!(st.triples_pushed(), 200);
    }

    #[test]
    fn intermediate_flush_writes_file() {
        let fs = FileSystem::new(LustreConfig::default());
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/p3.nt", RdfFormat::NTriples, false);
        st.push(triples(3), None);
        st.flush(None);
        assert!(st.size_bytes() > 0);
        st.push(triples(10), None);
        st.finish(None);
        let text = String::from_utf8(fs_read(&fs, "/prov/p3.nt")).unwrap();
        assert_eq!(ntriples::parse(&text).unwrap().len(), 10);
    }

    #[test]
    fn double_finish_is_safe() {
        let fs = FileSystem::new(LustreConfig::default());
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/p4.ttl", RdfFormat::Turtle, true);
        st.push(triples(2), None);
        let a = st.finish(None);
        let b = st.finish(None);
        assert_eq!(a, b);
    }

    #[test]
    fn sync_push_charges_caller_clock() {
        let fs = FileSystem::new(LustreConfig::default());
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/p5.ttl", RdfFormat::Turtle, false);
        let clock = VirtualClock::new();
        st.push(triples(1000), Some(&clock));
        assert!(clock.now().as_nanos() > 0, "sync mode bills the workflow");
    }

    #[test]
    fn thousands_of_stores_share_the_pool() {
        // The H5bench regression: many live stores must not exhaust host
        // threads. 2000 stores, a few triples each.
        let fs = FileSystem::new(LustreConfig::default());
        let stores: Vec<ProvenanceStore> = (0..2000)
            .map(|i| {
                let st = ProvenanceStore::new(
                    Arc::clone(&fs),
                    format!("/prov/many/p{i}.nt"),
                    RdfFormat::NTriples,
                    true,
                );
                st.push(triples(3), None);
                st
            })
            .collect();
        for st in &stores {
            assert!(st.finish(None) > 0);
        }
        assert_eq!(fs.walk_files("/prov/many").unwrap().len(), 2000);
    }

    #[test]
    fn commit_never_leaves_tmp_behind_on_success() {
        let fs = FileSystem::new(LustreConfig::default());
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/pt.nt", RdfFormat::NTriples, false);
        st.push(triples(4), None);
        st.finish(None);
        assert!(fs.exists("/prov/pt.nt"));
        assert!(!fs.exists("/prov/pt.nt.tmp"), "tmp renamed away");
    }

    #[test]
    fn transient_write_failure_is_retried_to_success() {
        let fs = FileSystem::new(LustreConfig::default());
        let plan = FaultPlan::new(11);
        plan.add_rule(
            FaultRule::fail(FaultOp::WriteAt, FsError::Io)
                .on_path("/prov/pr.nt.tmp")
                .times(2),
        );
        fs.install_faults(Arc::clone(&plan));
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/pr.nt", RdfFormat::NTriples, false)
            .with_retry(RetryPolicy {
                max_attempts: 3,
                backoff_ns: 1_000,
            });
        st.push(triples(7), None);
        let clock = VirtualClock::new();
        let bytes = st.finish(Some(&clock));
        assert!(bytes > 0, "two transient failures, third attempt lands");
        assert!(!st.degraded());
        assert_eq!(st.last_error(), Some(FsError::Io), "retries leave a trace");
        assert_eq!(plan.injected(), 2);
        // Exponential backoff charged to the rank: 1000 + 2000 ns.
        assert!(clock.now().as_nanos() >= 3_000);
        let text = String::from_utf8(fs_read(&fs, "/prov/pr.nt")).unwrap();
        assert_eq!(ntriples::parse(&text).unwrap().len(), 7);
    }

    #[test]
    fn permanent_failure_degrades_never_silently_zero() {
        let fs = FileSystem::new(LustreConfig::default());
        let plan = FaultPlan::new(12);
        plan.add_rule(FaultRule::fail(FaultOp::WriteAt, FsError::NoSpace).on_path("pd.nt.tmp"));
        fs.install_faults(plan);
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/pd.nt", RdfFormat::NTriples, false)
            .with_retry(RetryPolicy {
                max_attempts: 2,
                backoff_ns: 0,
            });
        st.push(triples(5), None);
        assert_eq!(st.finish(None), 0);
        assert!(st.degraded(), "flush dropped, state surfaced");
        assert_eq!(st.last_error(), Some(FsError::NoSpace));
        assert_eq!(st.dropped_flushes(), 1);
        // The committed path never appeared; the graph is still in memory.
        assert!(!fs.exists("/prov/pd.nt"));
        // Clearing the fault lets a later flush recover everything.
        fs.clear_faults();
        assert!(st.finish(None) > 0);
        assert!(!st.degraded());
        let text = String::from_utf8(fs_read(&fs, "/prov/pd.nt")).unwrap();
        assert_eq!(ntriples::parse(&text).unwrap().len(), 5);
    }

    #[test]
    fn crash_mid_flush_leaves_only_torn_tmp() {
        let fs = FileSystem::new(LustreConfig::default());
        let plan = FaultPlan::new(13);
        plan.add_rule(
            FaultRule::crash(FaultOp::WriteAt).on_path("pc.nt.tmp").torn(10),
        );
        fs.install_faults(plan);
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/pc.nt", RdfFormat::NTriples, false);
        st.push(triples(6), None);
        assert_eq!(st.finish(None), 0);
        assert!(st.degraded());
        assert_eq!(st.last_error(), Some(FsError::Crashed));
        // The committed path is untouched; the torn prefix sits in tmp.
        assert!(!fs.exists("/prov/pc.nt"));
        assert_eq!(fs.stat("/prov/pc.nt.tmp").unwrap().size, 10);
        // A crashed process never writes again, even after faults clear.
        fs.clear_faults();
        assert_eq!(st.finish(None), 0);
        assert_eq!(st.dropped_flushes(), 2);
        assert!(!fs.exists("/prov/pc.nt"));
    }

    #[test]
    fn crash_between_write_and_rename_keeps_previous_commit() {
        let fs = FileSystem::new(LustreConfig::default());
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/pv.nt", RdfFormat::NTriples, false);
        st.push(triples(3), None);
        let committed = st.finish(None);
        assert!(committed > 0);
        // Now arm a crash on the rename: the NEW flush dies after fully
        // writing tmp, and the committed file must still be the OLD graph.
        let plan = FaultPlan::new(14);
        plan.add_rule(FaultRule::crash(FaultOp::Rename).on_path("pv.nt.tmp"));
        fs.install_faults(plan);
        st.push(triples(30), None);
        assert_eq!(st.finish(None), 0);
        let text = String::from_utf8(fs_read(&fs, "/prov/pv.nt")).unwrap();
        assert_eq!(
            ntriples::parse(&text).unwrap().len(),
            3,
            "reader sees the previous complete sub-graph, never a mix"
        );
    }

    fn fs_read(fs: &Arc<FileSystem>, path: &str) -> Vec<u8> {
        let ino = fs.lookup(path).unwrap();
        let size = fs.stat(path).unwrap().size;
        fs.read_at(ino, 0, size).unwrap().to_vec()
    }
}
