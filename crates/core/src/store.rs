//! The Provenance Store: durable, per-process RDF sub-graphs.
//!
//! Each tracked process owns one store writing a unique file under the
//! configured directory on the parallel file system — "PROV-IO maintains an
//! in-memory sub-graph for each process and lets the process serialize its
//! own sub-graph to a unique RDF file on disk" (paper §5). Serialization is
//! asynchronous by default: batches are applied by a small shared writer
//! pool (thousands of per-rank stores may be live at H5bench scale, so a
//! thread per store would exhaust the host), and the workflow's critical
//! path only pays for enqueueing. The synchronous mode exists as the
//! ablation the paper's design argues against.
//!
//! # Incremental flushing: snapshot + delta segments
//!
//! Re-serializing the whole sub-graph on every periodic flush is O(n) per
//! flush — O(n²) over a run — and the paper's tracking-overhead numbers
//! (§6.2) hinge on the flush path staying off the workflow's critical
//! path. The store therefore persists incrementally:
//!
//! * The first flush writes a full **snapshot** to the committed path in
//!   the configured format (Turtle or N-Triples).
//! * Every later flush serializes only the triples inserted since the last
//!   persisted point — tracked by a *watermark* into the graph's
//!   insertion-ordered id-triples — and appends them as a new **delta
//!   segment** `<path>.dNNNNNN.nt` (always N-Triples: line-oriented, so a
//!   torn segment salvages by prefix).
//! * `finish` (and every `compact_every` delta appends) **compacts**:
//!   writes a fresh full snapshot and unlinks the segments it folded in.
//!
//! Every file (snapshot or segment) is committed crash-consistently:
//! serialized to `<file>.tmp`, then atomically renamed. A reader — the
//! post-run merge — reads the snapshot plus all live segments; duplicate
//! triples collapse on merge, so compaction racing a crash can only
//! duplicate data, never lose it.
//!
//! # Off-lock serialization
//!
//! The graph lives under a *state* lock that `push` takes briefly; all file
//! I/O serializes under a separate *io* lock. A flush holds the state lock
//! only long enough to capture the delta id-range and `Arc`-clone the
//! distinct terms behind it (or, for a snapshot, to clone the graph's
//! interned structure — term payloads are shared `Arc<str>`s). Rendering
//! and disk writes happen outside the state lock, so concurrent `push`
//! calls never stall behind serialization.
//!
//! # Crash consistency
//!
//! Transient errors (`EIO`, `ENOSPC`) are retried under a [`RetryPolicy`]
//! with exponential backoff charged to the issuing rank's virtual clock;
//! permanent or exhausted failures flip the store into a *degraded* state:
//! the in-memory graph is kept, the watermark is rewound so the failed
//! delta is retried by the next flush (same segment name — the atomic
//! rename makes the retry idempotent), the dropped flush is counted, and
//! the last error is surfaced through the tracker summary instead of being
//! silently reported as zero stored bytes. A fired crash point kills the
//! writer for good; whatever the crash tore is salvaged at merge time.
//!
//! # Backpressure and the circuit breaker
//!
//! The async intake queue is **bounded** ([`ProvenanceStore::with_queue`]):
//! when a producer outruns the writer pool, the store either blocks the
//! pushing rank until the writers catch up ([`OverloadPolicy::Block`], the
//! default — provenance-complete, workflow pays) or sheds the batch and
//! counts it ([`OverloadPolicy::Shed`] — workflow never stalls, loss is
//! reported in `TrackSummary`). Memory stays bounded either way.
//!
//! A **circuit breaker** ([`ProvenanceStore::with_breaker`]) stops a store
//! from hammering a persistently failing backend: after `threshold`
//! consecutive flush failures it opens and periodic flushes are *skipped*
//! (counted, and harmless — unflushed triples stay above the watermark).
//! After a backoff interval on the virtual clock the breaker half-opens and
//! lets one probe flush through; success closes it, failure re-opens it.
//! `finish` always attempts the final snapshot regardless of breaker state.
//!
//! # Checksummed framing
//!
//! With [`ProvenanceStore::with_checksums`] every committed file is wrapped
//! in the [`crate::frame`] format: a header carrying the store GUID and the
//! file's ordinal in this store's commit sequence, per-batch CRC-32 frames
//! over the payload, and a footer whose chain value links each file to its
//! predecessor. The ordinal and chain advance only on a *successful*
//! commit, so a failed flush retries under the same identity and the
//! on-disk chain never skips. All frame lines are `#` comments, so a
//! framed file is still parseable by any legacy reader; merge-side
//! verification is where the checksums pay off (see [`crate::merge`]).
//!
//! # The write-ahead journal
//!
//! Everything above bounds what a *flush* can lose; nothing bounds what a
//! *crash between flushes* loses — every triple above the watermark dies
//! with the process. `ProvenanceStore::with_wal` closes that gap: each
//! pushed record is rendered as one N-Triples line and appended to a
//! journal generation file `<path>.wNNNNNN.nt` in **group commits** of
//! `wal_group` records. A group commit is one self-contained
//! `FrameKind::Wal` frame whose `ordinal` is the record ordinal of its
//! first line (record ordinals are the graph's insertion indices, so the
//! journal and the committed files speak the same coordinate system) and
//! whose `prev` chains it to the previous chunk in the generation. Flush
//! boundaries force the partial group out, so the journal always covers at
//! least everything a flush is about to commit.
//!
//! After a *successful* flush the journal is recycled: buffered records are
//! discarded (the commit covers them), the generation file is unlinked, and
//! the next append opens a fresh generation via the same tmp+rename
//! discipline as segments. A crash between "segment commit" and "journal
//! unlink" merely leaves a stale generation whose records the merge
//! deduplicates by ordinal against the committed files — never a double
//! count. A crash mid-append leaves a torn chunk the frame CRCs catch; the
//! merge truncates the journal's tail there and replays the verified
//! prefix. Net contract: with the WAL on, a crashed rank loses at most
//! `wal_group` records (the unforced tail of the last group), and the loss
//! is reported, not silent.

use crate::config::{OverloadPolicy, RdfFormat, RetryPolicy};
use crate::frame::{self, FrameKind};
use crate::scrub::{self, MemberCheck, ParityMember};
use parking_lot::{Condvar, Mutex};
use provio_hpcfs::{FileSystem, FsError, Ino};
use provio_rdf::{ntriples, turtle, Graph, Namespaces, Term, TermId, Triple};
use provio_simrt::{ChargeGuard, DetRng, SimDuration, SimTime, VirtualClock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default compaction threshold when none is configured (matches
/// `ProvIoConfig::default().compact_every`).
pub const DEFAULT_COMPACT_EVERY: u32 = 64;

/// RNG stream for decorrelated retry jitter, carved out of the store GUID
/// so backoff draws never perturb any workload or fault stream.
const RETRY_JITTER_STREAM: u64 = 0x4E77;

/// The shared background writer pool.
mod pool {
    use crossbeam::channel::{unbounded, Sender};
    use std::sync::OnceLock;

    pub type Job = Box<dyn FnOnce() + Send>;

    /// Size of the shared pool (also how many jobs a test must park to
    /// deterministically wedge every worker).
    pub fn workers() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get().clamp(2, 8))
            .unwrap_or(2)
    }

    fn sender() -> &'static Sender<Job> {
        static TX: OnceLock<Sender<Job>> = OnceLock::new();
        TX.get_or_init(|| {
            let (tx, rx) = unbounded::<Job>();
            let workers = workers();
            for i in 0..workers {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("provio-store-{i}"))
                    .stack_size(512 * 1024)
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("spawn provenance store pool worker");
            }
            tx
        })
    }

    pub fn submit(job: Job) {
        let _ = sender().send(job);
    }
}

/// Outstanding-job counters for the bounded intake queue.
#[derive(Default)]
struct QueueCounts {
    /// All outstanding background jobs (push batches + flushes).
    in_flight: u64,
    /// Outstanding push batches only — the quantity the capacity bounds.
    queued_pushes: u64,
    shed_batches: u64,
    shed_triples: u64,
}

/// Outstanding background jobs, with a real wait instead of a spin loop,
/// plus the bounded-queue admission control. Capacity governs *push
/// batches*; flush jobs (a handful, issued by the store itself) are always
/// admitted so backpressure can never wedge a drain.
struct InFlight {
    counts: Mutex<QueueCounts>,
    zero: Condvar,
    below: Condvar,
}

impl InFlight {
    fn new() -> Self {
        InFlight {
            counts: Mutex::new(QueueCounts::default()),
            zero: Condvar::new(),
            below: Condvar::new(),
        }
    }

    /// Admit one push batch of `triples` triples under the store's queue
    /// bound. Returns `false` when the batch was shed instead.
    fn admit_push(&self, capacity: u64, policy: OverloadPolicy, triples: u64) -> bool {
        let mut c = self.counts.lock();
        if capacity > 0 && c.queued_pushes >= capacity {
            match policy {
                OverloadPolicy::Block => {
                    while c.queued_pushes >= capacity {
                        self.below.wait(&mut c);
                    }
                }
                OverloadPolicy::Shed => {
                    c.shed_batches += 1;
                    c.shed_triples += triples;
                    return false;
                }
            }
        }
        c.queued_pushes += 1;
        c.in_flight += 1;
        true
    }

    fn admit_flush(&self) {
        self.counts.lock().in_flight += 1;
    }

    fn done(&self, was_push: bool) {
        let mut c = self.counts.lock();
        if was_push {
            c.queued_pushes -= 1;
            self.below.notify_one();
        }
        c.in_flight -= 1;
        if c.in_flight == 0 {
            self.zero.notify_all();
        }
    }

    fn wait_zero(&self) {
        let mut c = self.counts.lock();
        while c.in_flight != 0 {
            self.zero.wait(&mut c);
        }
    }

    fn depth(&self) -> u64 {
        self.counts.lock().queued_pushes
    }

    fn shed(&self) -> (u64, u64) {
        let c = self.counts.lock();
        (c.shed_batches, c.shed_triples)
    }
}

/// Externally visible circuit-breaker state (surfaced via
/// [`ProvenanceStore::breaker_state`] and `TrackSummary`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Flushes flow normally.
    Closed,
    /// Tripped: periodic flushes are skipped until the backoff elapses.
    Open,
    /// Backoff elapsed: the next flush is a probe — success closes the
    /// breaker, failure re-opens it.
    HalfOpen,
}

impl BreakerState {
    pub fn as_str(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Internal breaker state: `Open` remembers when the backoff elapses on the
/// virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Breaker {
    Closed,
    Open { until: SimTime },
    HalfOpen,
}

/// The in-memory sub-graph plus the serialization high-water mark: how many
/// entries of the graph's insertion order are already durable (in the
/// snapshot or a committed segment). `push` takes only this lock.
struct GraphState {
    graph: Graph,
    watermark: usize,
}

/// One push's worth of journal records awaiting commit: `n` contiguous
/// record ordinals starting at `start`, rendered as one newline-terminated
/// N-Triples block. A chunk is committed whole (it becomes one frame) or
/// not at all.
struct WalChunk {
    start: u64,
    n: u64,
    block: String,
}

/// Everything the flush path owns: paths, format, retry/degradation
/// bookkeeping, and the delta-segment ledger. Holding this lock serializes
/// flushes without blocking `push`.
struct IoState {
    fs: Arc<FileSystem>,
    path: String,
    tmp_path: String,
    format: RdfFormat,
    retry: RetryPolicy,
    /// Per-store stream for decorrelated retry jitter (seeded from the
    /// store GUID, so N ranks' delays diverge deterministically).
    retry_rng: DetRng,
    /// Last flush failed permanently; the in-memory graph is still intact.
    degraded: bool,
    /// A crash point fired mid-flush: this writer's process is dead. No
    /// further writes are attempted (recovery belongs to the merge layer).
    crashed: bool,
    dropped_flushes: u64,
    /// Commit attempts that failed transiently and were retried (whether
    /// or not the flush eventually succeeded). Without this a retried
    /// flush that recovers is invisible in the summary — `degraded`
    /// only flips when the whole policy is exhausted.
    flush_retries: u64,
    last_error: Option<FsError>,
    /// Delta-segment protocol on (off = legacy full rewrite per flush).
    delta: bool,
    /// Fold segments into a fresh snapshot every this many delta appends
    /// (0 = only on `finish`).
    compact_every: u32,
    /// Committed, not-yet-compacted segment paths, oldest first.
    segments: Vec<String>,
    /// Sequence number of the next segment. Only advanced on a successful
    /// commit, so a failed append retries under the same name.
    next_seg: u64,
    deltas_since_snapshot: u32,
    /// A full snapshot exists at the committed path.
    snapshot_done: bool,
    /// Circuit breaker over the flush path. `breaker_threshold == 0`
    /// disables it (the default for bare stores).
    breaker: Breaker,
    breaker_threshold: u32,
    breaker_backoff_ns: u64,
    consecutive_failures: u32,
    breaker_trips: u64,
    breaker_skipped: u64,
    /// Time source for breaker backoff when a flush carries no charge
    /// clock (async flushes): the owning rank's clock, if wired via
    /// [`ProvenanceStore::with_clock`].
    clock: Option<VirtualClock>,
    /// Commit every file in the checksummed frame format (see
    /// [`crate::frame`]); legacy plain serialization when off.
    checksums: bool,
    /// GUID framed commits claim, derived from the store path.
    guid: u64,
    /// Ordinal of the next framed commit. Advanced only on success, so a
    /// failed flush retries under the same identity.
    next_ordinal: u64,
    /// Chain value of the last successfully committed framed file.
    last_chain: u32,
    /// Write-ahead journal on (see [`ProvenanceStore::with_wal`]).
    wal: bool,
    /// Group-commit threshold (≥ 1): the buffer is appended once it holds
    /// this many records, so exposure after a push stays under one group.
    wal_group: u32,
    /// Journal records accepted but not yet committed, one chunk per push
    /// (contiguous ordinals from `start`, one rendered block per chunk).
    wal_buf: Vec<WalChunk>,
    /// Sequence of the current journal generation file.
    wal_gen: u64,
    /// Open generation file, once the first append created it.
    wal_ino: Option<Ino>,
    /// Append offset into the open generation file.
    wal_len: u64,
    /// Chain value of the last chunk appended to the open generation.
    wal_chain: u32,
    /// Records durably journaled (across all generations).
    wal_records: u64,
    /// Successful group commits.
    wal_commits: u64,
    /// Generations recycled after a successful flush.
    wal_recycles: u64,
    /// Append attempts that failed (records stay buffered and retry at the
    /// next group boundary, over the same offset).
    wal_failed_appends: u64,
    /// Commit-time Merkle roots of framed files this store wrote, keyed by
    /// path: `(committed bytes, root)`. The sealing pass consumes these so
    /// it does not re-read and re-CRC files whose roots the encoder
    /// already folded for the footer; the byte count guards against a file
    /// that changed underneath the cache (it then takes the slow re-read
    /// path). Entries for compacted-away segments are dropped with them.
    roots: HashMap<String, (u64, [u8; 32])>,
    /// XOR parity over committed artifacts (see
    /// [`ProvenanceStore::with_parity`]). Only active alongside
    /// `checksums`: members are framed commits, and repair promises to
    /// restore their Merkle roots.
    parity: bool,
    /// Committed artifacts per parity group (≥ 1). 1 = a parity twin per
    /// commit (replication); larger groups trade coverage density for
    /// write volume (~1/N of committed bytes).
    parity_group: u32,
    /// Sequence of the next `.pNNNNNN.par` file — store-wide, shared by
    /// the commit-plane and journal-plane groups so names never collide.
    parity_seq: u64,
    /// Open commit-plane group (snapshot + delta segments): running XOR
    /// accumulator and the member records it covers.
    parity_acc: Vec<u8>,
    parity_members: Vec<ParityMember>,
    /// Sealed commit-plane parity files still live. Compaction supersedes
    /// every member at once, so these drop wholesale with the segments.
    parity_files: Vec<String>,
    /// Open journal-plane group over the current WAL generation's chunks.
    /// A chunk is immutable once appended, so (path, offset, len, crc)
    /// members stay valid until the generation recycles.
    wal_parity_acc: Vec<u8>,
    wal_parity_members: Vec<ParityMember>,
    /// Sealed journal-plane parity files (dropped on generation recycle —
    /// a crashed rank never recycles, which is exactly when they matter).
    wal_parity_files: Vec<String>,
    /// Parity files sealed (lifetime, both planes).
    parity_seals: u64,
    /// Seal attempts that failed. Parity is redundancy, not data: a
    /// failed seal costs future repairability, never the run.
    parity_failed: u64,
}

fn seg_path(path: &str, seq: u64) -> String {
    format!("{path}.d{seq:06}.nt")
}

fn wal_path(path: &str, gen: u64) -> String {
    format!("{path}.w{gen:06}.nt")
}

fn par_path(path: &str, seq: u64) -> String {
    format!("{path}.p{seq:06}.par")
}

/// Lines per CRC frame for line-oriented (N-Triples) payloads: small
/// enough that one corrupt region loses little, large enough that marker
/// overhead stays negligible.
const NT_BATCH_LINES: usize = 64;

impl IoState {
    /// The breaker's notion of "now": the charge clock if the flush carries
    /// one, else the owning rank's wired clock, else the epoch (which makes
    /// an un-clocked open breaker effectively permanent until `finish`).
    fn now(&self, charge: Option<&VirtualClock>) -> SimTime {
        charge
            .or(self.clock.as_ref())
            .map(VirtualClock::now)
            .unwrap_or(SimTime::ZERO)
    }

    /// Record a successful commit: any breaker state collapses to closed.
    fn breaker_note_success(&mut self) {
        self.consecutive_failures = 0;
        self.breaker = Breaker::Closed;
    }

    /// Record a terminally failed commit, tripping or re-arming the breaker.
    fn breaker_note_failure(&mut self, now: SimTime) {
        if self.breaker_threshold == 0 {
            return;
        }
        self.consecutive_failures += 1;
        let reopen = SimDuration::from_nanos(self.breaker_backoff_ns);
        match self.breaker {
            Breaker::Closed => {
                if self.consecutive_failures >= self.breaker_threshold {
                    self.breaker = Breaker::Open { until: now + reopen };
                    self.breaker_trips += 1;
                }
            }
            // A failed half-open probe re-opens for another backoff.
            Breaker::HalfOpen => {
                self.breaker = Breaker::Open { until: now + reopen };
                self.breaker_trips += 1;
            }
            // A bypassing flush (finish) failed while open: push the
            // reopen horizon out, but that's not a new trip.
            Breaker::Open { .. } => {
                self.breaker = Breaker::Open { until: now + reopen };
            }
        }
    }

    /// Gate for periodic flushes. An open breaker whose backoff has not
    /// elapsed rejects the flush; one whose backoff has elapsed half-opens
    /// and admits it as the probe.
    fn breaker_allows(&mut self, now: SimTime) -> bool {
        match self.breaker {
            Breaker::Open { until } if now < until => false,
            Breaker::Open { .. } => {
                self.breaker = Breaker::HalfOpen;
                true
            }
            _ => true,
        }
    }

    fn breaker_state(&self) -> BreakerState {
        match self.breaker {
            Breaker::Closed => BreakerState::Closed,
            Breaker::Open { .. } => BreakerState::Open,
            Breaker::HalfOpen => BreakerState::HalfOpen,
        }
    }

    /// One crash-consistent commit attempt: write everything to `tmp`, then
    /// atomically rename it over `dst`.
    fn try_commit(&self, tmp: &str, dst: &str, bytes: &[u8]) -> Result<(), FsError> {
        let now = SimTime::ZERO; // store-internal write; mtime is irrelevant
        let ino = self.fs.create_file(tmp, false, "provio", now)?;
        self.fs.truncate_ino(ino, 0, now)?;
        self.fs.write_at(ino, 0, bytes, now)?;
        self.fs.rename(tmp, dst, now)
    }

    /// Commit with the retry/backoff policy, updating the degradation
    /// bookkeeping. Returns `true` when `dst` is durable.
    fn commit_with_retry(
        &mut self,
        tmp: &str,
        dst: &str,
        bytes: &[u8],
        charge: Option<&VirtualClock>,
    ) -> bool {
        let mut failures = 0u32;
        let mut prev_delay = self.retry.backoff_ns;
        loop {
            match self.try_commit(tmp, dst, bytes) {
                Ok(()) => {
                    self.degraded = false;
                    self.breaker_note_success();
                    return true;
                }
                Err(FsError::Crashed) => {
                    // The process died mid-flush: no retry, no cleanup.
                    // A leftover tmp prefix is salvaged at merge time.
                    self.crashed = true;
                    self.degraded = true;
                    self.last_error = Some(FsError::Crashed);
                    self.dropped_flushes += 1;
                    return false;
                }
                Err(e) => {
                    failures += 1;
                    self.last_error = Some(e);
                    if e.is_transient() && failures < self.retry.max_attempts {
                        self.flush_retries += 1;
                        // Jitter draws from the store's own seeded stream,
                        // so ranks tripped by one shared episode spread out
                        // instead of retrying in lockstep.
                        let delay = if self.retry.jitter {
                            prev_delay = self
                                .retry
                                .jittered_backoff(prev_delay, &mut self.retry_rng);
                            prev_delay
                        } else {
                            self.retry.backoff_for(failures)
                        };
                        if let Some(clock) = charge {
                            clock.advance(SimDuration::from_nanos(delay));
                        }
                        continue;
                    }
                    self.degraded = true;
                    self.dropped_flushes += 1;
                    let now = self.now(charge);
                    self.breaker_note_failure(now);
                    return false;
                }
            }
        }
    }

    /// Open the current journal generation file (tmp+rename, the same
    /// discipline as segments, so the generation enters the namespace
    /// atomically and an interrupted open never masquerades as a journal).
    fn wal_open_gen(&mut self) -> Result<Ino, FsError> {
        if let Some(ino) = self.wal_ino {
            return Ok(ino);
        }
        let now = SimTime::ZERO;
        let gen = wal_path(&self.path, self.wal_gen);
        let tmp = format!("{gen}.tmp");
        let ino = self.fs.create_file(&tmp, false, "provio", now)?;
        self.fs.truncate_ino(ino, 0, now)?;
        self.fs.rename(&tmp, &gen, now)?;
        self.wal_ino = Some(ino);
        self.wal_len = 0;
        self.wal_chain = frame::CHAIN_START;
        Ok(ino)
    }

    /// Group-commit buffered journal records: once the buffer holds at
    /// least `wal_group` records — or at any size when `force`, a flush
    /// boundary — every buffered chunk is framed (one frame per chunk, its
    /// ordinal the chunk's first record) and all of them land in one
    /// contiguous positional write, so a 1000-record push costs a single
    /// append with no per-record work. The exposure window after any push
    /// is therefore under `wal_group` records. A failed append advances
    /// nothing: the chunks stay buffered and the whole append retries at
    /// the same offset, so a torn partial append is simply overwritten; a
    /// crash point kills the writer as everywhere else.
    fn wal_commit(&mut self, force: bool) {
        if !self.wal || self.crashed {
            return;
        }
        let buffered: u64 = self.wal_buf.iter().map(|c| c.n).sum();
        if buffered == 0 || (!force && buffered < u64::from(self.wal_group.max(1))) {
            return;
        }
        let ino = match self.wal_open_gen() {
            Ok(ino) => ino,
            Err(e) => {
                self.wal_note_failure(e);
                return;
            }
        };
        let mut bytes =
            Vec::with_capacity(self.wal_buf.iter().map(|c| c.block.len() + 128).sum());
        let mut chain = self.wal_chain;
        // Frame boundaries within `bytes`, recorded so each committed
        // chunk can become a journal-plane parity member at its final
        // offset in the generation file.
        let mut spans: Vec<(u64, u64)> = Vec::new();
        for chunk in &self.wal_buf {
            let mut enc = frame::Encoder::new(FrameKind::Wal, self.guid, chunk.start, chain);
            enc.batch_block(&chunk.block, chunk.n as usize);
            let (frame_bytes, frame_chain) = enc.finish();
            if self.parity_on() {
                spans.push((bytes.len() as u64, frame_bytes.len() as u64));
            }
            bytes.extend_from_slice(&frame_bytes);
            chain = frame_chain;
        }
        match self.fs.write_at(ino, self.wal_len, &bytes, SimTime::ZERO) {
            Ok(_) => {
                if self.parity_on() {
                    let gen = wal_path(&self.path, self.wal_gen);
                    for &(off, len) in &spans {
                        let span = &bytes[off as usize..(off + len) as usize];
                        scrub::xor_into(&mut self.wal_parity_acc, span);
                        self.wal_parity_members.push(ParityMember {
                            path: gen.clone(),
                            offset: self.wal_len + off,
                            len,
                            check: MemberCheck::Crc(crc32fast::hash(span)),
                            ord: None,
                        });
                    }
                }
                self.wal_len += bytes.len() as u64;
                self.wal_chain = chain;
                self.wal_buf.clear();
                self.wal_records += buffered;
                self.wal_commits += 1;
                if self.parity_on()
                    && self.wal_parity_members.len() >= self.parity_group.max(1) as usize
                {
                    self.parity_seal_open(true);
                }
            }
            Err(e) => self.wal_note_failure(e),
        }
    }

    fn wal_note_failure(&mut self, e: FsError) {
        self.last_error = Some(e);
        if e == FsError::Crashed {
            self.crashed = true;
            self.degraded = true;
        } else {
            self.wal_failed_appends += 1;
        }
    }

    /// Recycle the journal after a successful flush: everything journaled
    /// or buffered is covered by the commit (flush boundaries force the
    /// buffer out first, and the flush captured at least that far), so the
    /// generation is retired and the next append opens a fresh one. The
    /// unlink is best-effort — a stale generation surviving a crash here is
    /// exactly what merge-time ordinal dedupe absorbs.
    fn wal_recycle(&mut self) {
        if !self.wal {
            return;
        }
        self.wal_buf.clear();
        // Journal-plane parity referenced the retiring generation's chunks;
        // it retires *first*, mirroring the commit plane's invalidate-
        // before-unlink order. A crash between the unlinks must never
        // leave parity describing members that are already gone: scrub
        // would read the orphaned group as unrecoverable loss — or, for a
        // single-chunk group, "repair" the retired generation back into
        // existence (found by crashcheck, tests/crashcheck.rs).
        for p in std::mem::take(&mut self.wal_parity_files) {
            let _ = self.fs.unlink(&p);
            self.roots.remove(&p);
        }
        self.wal_parity_acc.clear();
        self.wal_parity_members.clear();
        if self.wal_ino.take().is_some() {
            let _ = self.fs.unlink(&wal_path(&self.path, self.wal_gen));
            self.wal_recycles += 1;
        }
        self.wal_gen += 1;
        self.wal_len = 0;
        self.wal_chain = frame::CHAIN_START;
    }

    /// Parity is only live over framed commits: member records pin each
    /// member (the commit frame's Merkle root for whole files, a raw-span
    /// CRC for journal chunks) plus a commit ordinal, and repair promises
    /// to restore those exact bytes.
    fn parity_on(&self) -> bool {
        self.parity && self.checksums
    }

    /// Fold one whole-file commit (snapshot or delta segment) into the
    /// open commit-plane group; seal the group once it is full. Takes the
    /// committed frame by value: the first member of a group *is* the
    /// accumulator (XOR against an empty accumulator is identity), so a
    /// snapshot-sized commit is adopted by move instead of copied.
    fn parity_track_commit(&mut self, path: &str, bytes: Vec<u8>, ord: u64, root: Option<[u8; 32]>) {
        if !self.parity_on() || self.crashed {
            return;
        }
        let check = match root {
            // The committing encoder already computed this root for the
            // manifest cache: pinning the member costs no extra pass.
            Some(r) => MemberCheck::Root(r),
            None => MemberCheck::Crc(crc32fast::hash(&bytes)),
        };
        self.parity_members.push(ParityMember {
            path: path.to_string(),
            offset: 0,
            len: bytes.len() as u64,
            check,
            ord: Some(ord),
        });
        if self.parity_acc.is_empty() {
            self.parity_acc = bytes;
        } else {
            scrub::xor_into(&mut self.parity_acc, &bytes);
        }
        if self.parity_members.len() >= self.parity_group.max(1) as usize {
            self.parity_seal_open(false);
        }
    }

    /// Seal the open group of one plane as `<path>.pNNNNNN.par`: a
    /// PROVIO1 `kind=parity` frame whose first batch is the member
    /// records and whose second batch is the XOR block (base64, or a raw
    /// replica for a single-member group — see
    /// [`scrub::encode_parity_frame`]), committed
    /// tmp+rename like every artifact and root-cached so the manifest
    /// lists it. A failed seal drops the group — its members are already
    /// durable, so only future repairability is lost, and the next commit
    /// starts a fresh group.
    fn parity_seal_open(&mut self, journal: bool) {
        let (members, acc) = if journal {
            (
                std::mem::take(&mut self.wal_parity_members),
                std::mem::take(&mut self.wal_parity_acc),
            )
        } else {
            (
                std::mem::take(&mut self.parity_members),
                std::mem::take(&mut self.parity_acc),
            )
        };
        if members.is_empty() {
            return;
        }
        let seq = self.parity_seq;
        let dst = par_path(&self.path, seq);
        let tmp = format!("{dst}.tmp");
        let member_lines: Vec<String> = members.iter().map(scrub::member_line).collect();
        let (framed, root) = scrub::encode_parity_frame(self.guid, seq, &member_lines, &acc);
        match self.try_commit(&tmp, &dst, &framed) {
            Ok(()) => {
                self.roots.insert(dst.clone(), (framed.len() as u64, root));
                if journal {
                    self.wal_parity_files.push(dst);
                } else {
                    self.parity_files.push(dst);
                }
                self.parity_seq += 1;
                self.parity_seals += 1;
            }
            Err(e) => {
                self.parity_failed += 1;
                self.last_error = Some(e);
                if e == FsError::Crashed {
                    self.crashed = true;
                    self.degraded = true;
                }
                let _ = self.fs.unlink(&tmp);
            }
        }
    }

    /// Compaction supersedes every artifact the commit-plane parity
    /// covers: drop the sealed files and the open group. Runs *before*
    /// the superseded segments are unlinked, so a crash in between leaves
    /// no parity describing members that are already gone.
    fn parity_invalidate_commit_plane(&mut self) {
        for p in std::mem::take(&mut self.parity_files) {
            let _ = self.fs.unlink(&p);
            self.roots.remove(&p);
        }
        self.parity_acc.clear();
        self.parity_members.clear();
    }
}

/// Shared core of a store: the graph under the state lock, the write path
/// under the io lock. Lock order is always io → state; `push` takes only
/// state, so it never waits on disk.
struct Inner {
    state: Mutex<GraphState>,
    io: Mutex<IoState>,
}

impl Inner {
    /// Serialize the whole graph and commit it over the snapshot path,
    /// unlinking any delta segments the snapshot now supersedes. Returns
    /// committed bytes, or 0 on a dropped flush.
    fn snapshot(&self, io: &mut IoState, charge: Option<&VirtualClock>) -> u64 {
        // Capture under the state lock: the clone shares term payloads
        // (`Arc<str>`), so this is O(ids), not O(bytes).
        let (graph, captured) = {
            let st = self.state.lock();
            (st.graph.clone(), st.graph.len())
        };
        let (bytes, chain, root) = match (io.checksums, io.format) {
            (false, RdfFormat::Turtle) => (
                turtle::serialize(&graph, &Namespaces::standard()).into_bytes(),
                None,
                None,
            ),
            (false, RdfFormat::NTriples) => {
                (ntriples::serialize(&graph).into_bytes(), None, None)
            }
            // Turtle statements span lines, and splicing verified fragments
            // across a dropped batch could forge triples — a Turtle
            // snapshot is one all-or-nothing batch.
            (true, RdfFormat::Turtle) => {
                let text = turtle::serialize(&graph, &Namespaces::standard());
                let (framed, c, r) = frame::encode_with_root(
                    FrameKind::Snapshot,
                    io.guid,
                    io.next_ordinal,
                    io.last_chain,
                    &text,
                    usize::MAX,
                );
                (framed.into_bytes(), Some(c), Some(r))
            }
            // N-Triples is line-oriented, so fine-grained batches salvage
            // safely — and the lines can be framed while still cache-hot
            // instead of re-scanning a rendered blob.
            (true, RdfFormat::NTriples) => {
                let lines = ntriples::sorted_graph_lines(&graph);
                let mut enc = frame::Encoder::new(
                    FrameKind::Snapshot,
                    io.guid,
                    io.next_ordinal,
                    io.last_chain,
                );
                enc.reserve(lines.iter().map(|l| l.len() + 1).sum());
                for chunk in lines.chunks(NT_BATCH_LINES) {
                    enc.batch(chunk);
                }
                let (framed, c, r) = enc.finish_with_root();
                (framed, Some(c), Some(r))
            }
        };
        let (tmp, dst) = (io.tmp_path.clone(), io.path.clone());
        if !io.commit_with_retry(&tmp, &dst, &bytes, charge) {
            return 0;
        }
        if let Some(c) = chain {
            io.last_chain = c;
            io.next_ordinal += 1;
        }
        if let Some(r) = root {
            io.roots.insert(dst.clone(), (bytes.len() as u64, r));
        }
        let committed = bytes.len() as u64;
        if io.parity_on() {
            // The compacted snapshot supersedes everything the live parity
            // covered; it then opens a fresh group as member zero. The
            // ordinal is the one this commit just consumed.
            io.parity_invalidate_commit_plane();
            let ord = io.next_ordinal - 1;
            io.parity_track_commit(&dst, bytes, ord, root);
        }
        // The snapshot holds everything the segments held: fold them away.
        // Unlink failures are harmless — a surviving segment only feeds the
        // merge duplicate triples, which collapse.
        let segs = std::mem::take(&mut io.segments);
        for seg in segs {
            let _ = io.fs.unlink(&seg);
            io.roots.remove(&seg);
        }
        // A failed earlier append may have left the next segment's tmp.
        let _ = io.fs.unlink(&format!("{}.tmp", seg_path(&io.path, io.next_seg)));
        io.deltas_since_snapshot = 0;
        io.snapshot_done = true;
        self.state.lock().watermark = captured;
        io.wal_recycle();
        committed
    }

    /// Append one delta segment holding the triples above the watermark.
    fn delta_flush(&self, io: &mut IoState, charge: Option<&VirtualClock>) -> u64 {
        // Capture the delta under the state lock: the id slice plus one
        // `Arc` clone per *distinct* term in it. Advance the watermark
        // optimistically so the io work below runs against a frozen range.
        let (ids, terms) = {
            let mut st = self.state.lock();
            let ids = st.graph.ids_from(st.watermark).to_vec();
            if ids.is_empty() {
                return 0;
            }
            let mut terms: HashMap<u32, Term> = HashMap::new();
            for &(s, p, o) in &ids {
                for id in [s, p, o] {
                    terms
                        .entry(id)
                        .or_insert_with(|| st.graph.term(TermId(id)).clone());
                }
            }
            st.watermark += ids.len();
            (ids, terms)
        };
        // Render off the state lock; the io lock (held by our caller)
        // already serializes flushes.
        let (bytes, chain, root) = if io.checksums {
            // Frame the sorted lines while they are hot: no re-scan, no
            // UTF-8 revalidation, no second full-payload copy.
            let lines = ntriples::sorted_id_lines(&ids, |id| &terms[&id]);
            let mut enc = frame::Encoder::new(
                FrameKind::Delta,
                io.guid,
                io.next_ordinal,
                io.last_chain,
            );
            enc.reserve(lines.iter().map(|l| l.len() + 1).sum());
            for chunk in lines.chunks(NT_BATCH_LINES) {
                enc.batch(chunk);
            }
            let (framed, c, r) = enc.finish_with_root();
            (framed, Some(c), Some(r))
        } else {
            let mut buf = Vec::new();
            ntriples::render_ids(&ids, |id| &terms[&id], &mut buf)
                .expect("writing to a Vec cannot fail");
            (buf, None, None)
        };
        let seg = seg_path(&io.path, io.next_seg);
        let tmp = format!("{seg}.tmp");
        if io.commit_with_retry(&tmp, &seg, &bytes, charge) {
            if let Some(c) = chain {
                io.last_chain = c;
                io.next_ordinal += 1;
            }
            if let Some(r) = root {
                io.roots.insert(seg.clone(), (bytes.len() as u64, r));
            }
            let n = bytes.len() as u64;
            if io.parity_on() {
                let ord = io.next_ordinal - 1;
                io.parity_track_commit(&seg, bytes, ord, root);
            }
            io.segments.push(seg);
            io.next_seg += 1;
            io.deltas_since_snapshot += 1;
            io.wal_recycle();
            if io.compact_every > 0 && io.deltas_since_snapshot >= io.compact_every {
                self.snapshot(io, charge);
            }
            n
        } else {
            // The delta never landed: rewind the watermark so the next
            // flush retries exactly these triples under the same segment
            // name (the atomic rename makes that idempotent).
            self.state.lock().watermark -= ids.len();
            0
        }
    }

    /// Periodic flush: snapshot first, deltas after (legacy mode always
    /// snapshots). Returns committed bytes or 0 for a dropped/empty/
    /// breaker-skipped flush.
    fn flush_now(&self, io: &mut IoState, charge: Option<&VirtualClock>) -> u64 {
        if io.crashed {
            io.dropped_flushes += 1;
            return 0;
        }
        // A flush boundary forces the journal's partial group out — before
        // the breaker gate, so journaling continues even while flushes are
        // being skipped (that is exactly when the journal earns its keep).
        io.wal_commit(true);
        if io.crashed {
            io.dropped_flushes += 1;
            return 0;
        }
        let now = io.now(charge);
        if !io.breaker_allows(now) {
            // Skipped, not dropped: the unflushed triples stay above the
            // watermark and land with the next admitted flush.
            io.breaker_skipped += 1;
            return 0;
        }
        if io.delta && io.snapshot_done {
            self.delta_flush(io, charge)
        } else {
            self.snapshot(io, charge)
        }
    }

    /// Final flush: always compacts to a single snapshot. Bypasses an open
    /// breaker — this is the run's last chance to persist.
    fn finish_now(&self, io: &mut IoState, charge: Option<&VirtualClock>) -> u64 {
        if io.crashed {
            io.dropped_flushes += 1;
            return 0;
        }
        // Journal first: if the final snapshot fails, the journal is what
        // the merge will replay.
        io.wal_commit(true);
        if io.crashed {
            io.dropped_flushes += 1;
            return 0;
        }
        let n = self.snapshot(io, charge);
        if n > 0 {
            // The run's terminal state must be repairable even when the
            // final group is short: force-seal whatever is open (a
            // single-member group degenerates to replication of the final
            // snapshot — honest, and still one-loss-tolerant).
            io.parity_seal_open(false);
        }
        n
    }

    /// Insert a batch into the graph. With the journal on, the newly
    /// inserted triples (dedup survivors — the journal speaks the graph's
    /// insertion-index coordinate system) are rendered as journal records
    /// as one block chunk, committed once the group threshold is reached.
    /// The io lock is taken only when
    /// journaling, so the journal-off push path is unchanged.
    fn apply_batch(&self, triples: &[Triple], wal: bool) {
        if !wal {
            let mut st = self.state.lock();
            for t in triples {
                st.graph.insert(t);
            }
            return;
        }
        let mut io = self.io.lock();
        {
            let mut st = self.state.lock();
            let before = st.graph.len();
            for t in triples {
                st.graph.insert(t);
            }
            let ids = st.graph.ids_from(before);
            if !ids.is_empty() {
                let n = ids.len() as u64;
                let block = ntriples::id_block(ids, |id| st.graph.term(TermId(id)));
                io.wal_buf.push(WalChunk {
                    start: before as u64,
                    n,
                    block,
                });
            }
        }
        io.wal_commit(false);
    }
}

/// A per-process provenance sink.
pub struct ProvenanceStore {
    inner: Arc<Inner>,
    /// Background jobs submitted but not yet completed.
    in_flight: Arc<InFlight>,
    async_store: bool,
    /// Intake-queue bound in push batches (0 = unbounded) and the policy
    /// applied when it fills. Only meaningful in async mode.
    queue_capacity: u64,
    overload: OverloadPolicy,
    /// Mirror of `IoState::wal`, readable without the io lock so the
    /// journal-off push path stays io-lock-free.
    wal_enabled: bool,
    fs: Arc<FileSystem>,
    path: String,
    triples_pushed: AtomicU64,
}

impl ProvenanceStore {
    /// Create a store writing `path` on `fs`. `async_store` selects the
    /// background-pool mode. Delta segments are on by default; see
    /// [`Self::with_delta`].
    pub fn new(
        fs: Arc<FileSystem>,
        path: impl Into<String>,
        format: RdfFormat,
        async_store: bool,
    ) -> Self {
        let path = path.into();
        // Ensure the parent directory exists.
        if let Some((dir, _)) = path.rsplit_once('/') {
            if !dir.is_empty() {
                let _ = fs.mkdir_all(dir, "provio", SimTime::ZERO);
            }
        }
        let io = IoState {
            fs: Arc::clone(&fs),
            path: path.clone(),
            tmp_path: format!("{path}.tmp"),
            format,
            retry: RetryPolicy::default(),
            retry_rng: DetRng::with_stream(frame::store_guid(&path), RETRY_JITTER_STREAM),
            degraded: false,
            crashed: false,
            dropped_flushes: 0,
            flush_retries: 0,
            last_error: None,
            delta: true,
            compact_every: DEFAULT_COMPACT_EVERY,
            segments: Vec::new(),
            next_seg: 0,
            deltas_since_snapshot: 0,
            snapshot_done: false,
            breaker: Breaker::Closed,
            breaker_threshold: 0,
            breaker_backoff_ns: 0,
            consecutive_failures: 0,
            breaker_trips: 0,
            breaker_skipped: 0,
            clock: None,
            checksums: false,
            guid: frame::store_guid(&path),
            next_ordinal: 0,
            last_chain: frame::CHAIN_START,
            wal: false,
            wal_group: crate::config::DEFAULT_WAL_GROUP,
            wal_buf: Vec::new(),
            wal_gen: 0,
            wal_ino: None,
            wal_len: 0,
            wal_chain: frame::CHAIN_START,
            wal_records: 0,
            wal_commits: 0,
            wal_recycles: 0,
            wal_failed_appends: 0,
            roots: HashMap::new(),
            parity: false,
            parity_group: crate::config::DEFAULT_PARITY_GROUP,
            parity_seq: 0,
            parity_acc: Vec::new(),
            parity_members: Vec::new(),
            parity_files: Vec::new(),
            wal_parity_acc: Vec::new(),
            wal_parity_members: Vec::new(),
            wal_parity_files: Vec::new(),
            parity_seals: 0,
            parity_failed: 0,
        };
        ProvenanceStore {
            inner: Arc::new(Inner {
                state: Mutex::new(GraphState {
                    graph: Graph::new(),
                    watermark: 0,
                }),
                io: Mutex::new(io),
            }),
            in_flight: Arc::new(InFlight::new()),
            async_store,
            queue_capacity: 0,
            overload: OverloadPolicy::Block,
            wal_enabled: false,
            fs,
            path,
            triples_pushed: AtomicU64::new(0),
        }
    }

    /// Override the flush retry/backoff policy.
    pub fn with_retry(self, retry: RetryPolicy) -> Self {
        self.inner.io.lock().retry = retry;
        self
    }

    /// Select the flush protocol: `enabled` turns delta segments on/off
    /// (off = legacy full rewrite on every flush, the ablation baseline),
    /// `compact_every` folds segments into a fresh snapshot every that many
    /// appends (0 = only on `finish`).
    pub fn with_delta(self, enabled: bool, compact_every: u32) -> Self {
        {
            let mut io = self.inner.io.lock();
            io.delta = enabled;
            io.compact_every = compact_every;
        }
        self
    }

    /// Bound the async intake queue at `capacity` push batches (0 =
    /// unbounded) and pick what a full queue does to the producer.
    pub fn with_queue(mut self, capacity: u64, policy: OverloadPolicy) -> Self {
        self.queue_capacity = capacity;
        self.overload = policy;
        self
    }

    /// Arm the circuit breaker: trip after `threshold` consecutive flush
    /// failures (0 disables, the default), half-open probe after
    /// `backoff_ns` virtual nanoseconds.
    pub fn with_breaker(self, threshold: u32, backoff_ns: u64) -> Self {
        {
            let mut io = self.inner.io.lock();
            io.breaker_threshold = threshold;
            io.breaker_backoff_ns = backoff_ns;
        }
        self
    }

    /// Wire the owning rank's virtual clock as the breaker's time source
    /// for flushes that carry no charge clock (all async flushes).
    pub fn with_clock(self, clock: VirtualClock) -> Self {
        self.inner.io.lock().clock = Some(clock);
        self
    }

    /// Commit files in the checksummed frame format (see [`crate::frame`]):
    /// header with store GUID and commit ordinal, per-batch CRC-32 frames,
    /// chained footer. Off by default (legacy plain serialization).
    pub fn with_checksums(self, enabled: bool) -> Self {
        self.inner.io.lock().checksums = enabled;
        self
    }

    /// Keep a write-ahead journal of pushed records in group commits of
    /// `group` records (clamped up to 1), bounding what a crash between
    /// flushes can lose to at most one group. Off by default — the
    /// journal-off store is byte-for-byte the legacy flush-boundary store.
    pub fn with_wal(mut self, enabled: bool, group: u32) -> Self {
        {
            let mut io = self.inner.io.lock();
            io.wal = enabled;
            io.wal_group = group.max(1);
        }
        self.wal_enabled = enabled;
        self
    }

    /// Maintain XOR parity over committed artifacts in groups of `group`
    /// (clamped up to 1): every full group seals a `<path>.pNNNNNN.par`
    /// file from which [`crate::scrub`] can reconstruct any single lost
    /// or rotted member byte-identical. Requires [`Self::with_checksums`]
    /// — parity stays dormant on an unframed store. Off by default.
    pub fn with_parity(self, enabled: bool, group: u32) -> Self {
        {
            let mut io = self.inner.io.lock();
            io.parity = enabled;
            io.parity_group = group.max(1);
        }
        self
    }

    /// The store file's path on the parallel file system.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The file system the store writes to — what run-level tooling (the
    /// manifest writer, `verify`) walks after the ranks finish.
    pub fn fs(&self) -> &Arc<FileSystem> {
        &self.fs
    }

    /// Hand a batch of triples to the store.
    ///
    /// Async mode: enqueue to the shared pool, subject to the bounded
    /// intake queue — a full queue blocks the caller or sheds the batch
    /// depending on [`Self::with_queue`]. Sync mode: insert on the caller's
    /// time (pass the issuing process's clock so the cost lands on the
    /// workflow — exactly the ablation's point). Either way only the state
    /// lock is taken, so a concurrent flush doing file I/O never stalls a
    /// push. `triples_pushed` counts every batch *offered*, shed or not;
    /// [`Self::shed_triples`] says how many of those never landed.
    pub fn push(&self, triples: Vec<Triple>, charge: Option<&VirtualClock>) {
        self.triples_pushed
            .fetch_add(triples.len() as u64, Ordering::Relaxed);
        if self.async_store {
            if !self
                .in_flight
                .admit_push(self.queue_capacity, self.overload, triples.len() as u64)
            {
                return; // shed under overload, counted in the queue stats
            }
            let inner = Arc::clone(&self.inner);
            let in_flight = Arc::clone(&self.in_flight);
            let wal = self.wal_enabled;
            pool::submit(Box::new(move || {
                inner.apply_batch(&triples, wal);
                in_flight.done(true);
            }));
        } else {
            let _guard = charge.map(ChargeGuard::new);
            self.inner.apply_batch(&triples, self.wal_enabled);
        }
    }

    /// Wait until all enqueued batches for this store have been applied.
    fn drain(&self) {
        self.in_flight.wait_zero();
    }

    /// Request an intermediate serialization (periodic policy). In delta
    /// mode this appends a segment holding only the not-yet-durable
    /// triples; the first flush (and every `compact_every`-th) writes a
    /// full snapshot.
    pub fn flush(&self, charge: Option<&VirtualClock>) {
        if self.async_store {
            let inner = Arc::clone(&self.inner);
            let in_flight = Arc::clone(&self.in_flight);
            in_flight.admit_flush();
            pool::submit(Box::new(move || {
                let mut io = inner.io.lock();
                inner.flush_now(&mut io, None);
                drop(io);
                in_flight.done(false);
            }));
        } else {
            let _guard = charge.map(ChargeGuard::new);
            let mut io = self.inner.io.lock();
            self.inner.flush_now(&mut io, charge);
        }
    }

    /// Final flush; blocks until the sub-graph is durable as one compacted
    /// snapshot (all delta segments folded in and removed) and returns its
    /// size in bytes (0 if the store is degraded — see [`Self::degraded`] /
    /// [`Self::last_error`]).
    pub fn finish(&self, charge: Option<&VirtualClock>) -> u64 {
        if self.async_store {
            self.drain();
            let mut io = self.inner.io.lock();
            self.inner.finish_now(&mut io, None)
        } else {
            let _guard = charge.map(ChargeGuard::new);
            let mut io = self.inner.io.lock();
            self.inner.finish_now(&mut io, charge)
        }
    }

    /// Did the last flush fail (graph kept in memory, bytes not durable)?
    pub fn degraded(&self) -> bool {
        self.inner.io.lock().degraded
    }

    /// The most recent flush error, if any (survives a later success, as a
    /// record of retried trouble).
    pub fn last_error(&self) -> Option<FsError> {
        self.inner.io.lock().last_error
    }

    /// Flushes dropped after retry exhaustion, permanent error, or crash.
    pub fn dropped_flushes(&self) -> u64 {
        self.inner.io.lock().dropped_flushes
    }

    /// Commit attempts retried after a transient failure — visible even
    /// when every flush eventually succeeded and `degraded` never flipped.
    pub fn flush_retries(&self) -> u64 {
        self.inner.io.lock().flush_retries
    }

    /// Force the journal tail out regardless of the group boundary, so
    /// every record pushed so far is journal-durable. The streaming layer
    /// calls this before offering a batch to the collector: an ack must
    /// never reference data only this process held, or an aggregator
    /// crash could lose acked records that resync cannot replay. No-op
    /// with the journal off; async stores drain their intake queue first.
    pub fn wal_sync(&self) {
        if !self.wal_enabled {
            return;
        }
        if self.async_store {
            self.drain();
        }
        let mut io = self.inner.io.lock();
        io.wal_commit(true);
    }

    /// Current size of the committed snapshot on the parallel file system
    /// (delta segments not included).
    pub fn size_bytes(&self) -> u64 {
        self.fs.stat(&self.path).map(|m| m.size).unwrap_or(0)
    }

    /// Live (committed, not yet compacted) delta segments.
    pub fn segment_count(&self) -> usize {
        self.inner.io.lock().segments.len()
    }

    /// Triples pushed so far (pre-dedup, including shed batches).
    pub fn triples_pushed(&self) -> u64 {
        self.triples_pushed.load(Ordering::Relaxed)
    }

    /// Push batches currently waiting in the async intake queue. Never
    /// exceeds the configured capacity.
    pub fn queue_depth(&self) -> u64 {
        self.in_flight.depth()
    }

    /// Batches dropped by the `Shed` overload policy.
    pub fn shed_batches(&self) -> u64 {
        self.in_flight.shed().0
    }

    /// Triples inside those shed batches.
    pub fn shed_triples(&self) -> u64 {
        self.in_flight.shed().1
    }

    /// Current circuit-breaker state.
    pub fn breaker_state(&self) -> BreakerState {
        self.inner.io.lock().breaker_state()
    }

    /// Times the breaker tripped open (including failed half-open probes).
    pub fn breaker_trips(&self) -> u64 {
        self.inner.io.lock().breaker_trips
    }

    /// Periodic flushes skipped because the breaker was open. Skipped is
    /// not lost: the triples stay above the watermark.
    pub fn breaker_skipped(&self) -> u64 {
        self.inner.io.lock().breaker_skipped
    }

    /// Records durably group-committed to the write-ahead journal.
    pub fn wal_records(&self) -> u64 {
        self.inner.io.lock().wal_records
    }

    /// Successful journal appends (each covers every chunk then buffered).
    pub fn wal_commits(&self) -> u64 {
        self.inner.io.lock().wal_commits
    }

    /// Journal generations retired after successful flushes.
    pub fn wal_recycles(&self) -> u64 {
        self.inner.io.lock().wal_recycles
    }

    /// Journal appends that failed and left their records buffered for a
    /// retry at the next group boundary.
    pub fn wal_failed_appends(&self) -> u64 {
        self.inner.io.lock().wal_failed_appends
    }

    /// Journal records accepted but not yet group-committed — the exposure
    /// window, never more than one group unless appends are failing.
    pub fn wal_buffered(&self) -> u64 {
        self.inner.io.lock().wal_buf.iter().map(|c| c.n).sum()
    }

    /// Commit-time Merkle roots of the framed files this store currently
    /// has on disk, as `(path, committed bytes, root)`. The sealing pass
    /// ([`crate::verify::seal_run_with_roots`]) uses these to sign a run
    /// without re-reading the store's own commits; files that changed
    /// since (byte count mismatch) fall back to a full re-read there.
    pub fn committed_roots(&self) -> Vec<(String, u64, [u8; 32])> {
        let io = self.inner.io.lock();
        io.roots
            .iter()
            .map(|(p, &(n, r))| (p.clone(), n, r))
            .collect()
    }

    /// Parity files sealed over this store's lifetime (both planes;
    /// compaction/recycle may have since retired some).
    pub fn parity_seals(&self) -> u64 {
        self.inner.io.lock().parity_seals
    }

    /// Parity seal attempts that failed (coverage lost, run unaffected).
    pub fn parity_failed(&self) -> u64 {
        self.inner.io.lock().parity_failed
    }

    /// Sealed parity files currently live on disk, commit plane first.
    pub fn parity_files(&self) -> Vec<String> {
        let io = self.inner.io.lock();
        io.parity_files
            .iter()
            .chain(io.wal_parity_files.iter())
            .cloned()
            .collect()
    }
}

impl Drop for ProvenanceStore {
    fn drop(&mut self) {
        // Make sure buffered batches land even if `finish` was never called
        // (e.g. a process crashed before MPI_Finalize).
        if self.async_store {
            self.drain();
            let mut io = self.inner.io.lock();
            self.inner.finish_now(&mut io, None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provio_hpcfs::{FaultOp, FaultPlan, FaultRule, LustreConfig};
    use provio_rdf::{Iri, Subject, Term};

    fn triples(n: usize) -> Vec<Triple> {
        (0..n)
            .map(|i| {
                Triple::new(
                    Subject::iri(format!("urn:s{i}")),
                    Iri::new("urn:p"),
                    Term::iri("urn:o"),
                )
            })
            .collect()
    }

    fn triples_from(start: usize, n: usize) -> Vec<Triple> {
        (start..start + n)
            .map(|i| {
                Triple::new(
                    Subject::iri(format!("urn:s{i}")),
                    Iri::new("urn:p"),
                    Term::iri("urn:o"),
                )
            })
            .collect()
    }

    #[test]
    fn sync_store_round_trip() {
        let fs = FileSystem::new(LustreConfig::default());
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/p1.ttl", RdfFormat::Turtle, false);
        st.push(triples(5), None);
        let bytes = st.finish(None);
        assert!(bytes > 0);
        assert_eq!(st.size_bytes(), bytes);
        let text = String::from_utf8(fs_read(&fs, "/prov/p1.ttl")).unwrap();
        let (g, _) = turtle::parse(&text).unwrap();
        assert_eq!(g.len(), 5);
        assert!(!st.degraded());
        assert_eq!(st.last_error(), None);
    }

    #[test]
    fn async_store_round_trip() {
        let fs = FileSystem::new(LustreConfig::default());
        let st =
            ProvenanceStore::new(Arc::clone(&fs), "/prov/p2.nt", RdfFormat::NTriples, true);
        st.push(triples(100), None);
        st.push(triples(100), None); // duplicates collapse in the graph
        let bytes = st.finish(None);
        assert!(bytes > 0);
        let text = String::from_utf8(fs_read(&fs, "/prov/p2.nt")).unwrap();
        let g = ntriples::parse(&text).unwrap();
        assert_eq!(g.len(), 100);
        assert_eq!(st.triples_pushed(), 200);
    }

    #[test]
    fn intermediate_flush_writes_file() {
        let fs = FileSystem::new(LustreConfig::default());
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/p3.nt", RdfFormat::NTriples, false);
        st.push(triples(3), None);
        st.flush(None);
        assert!(st.size_bytes() > 0);
        st.push(triples(10), None);
        st.finish(None);
        let text = String::from_utf8(fs_read(&fs, "/prov/p3.nt")).unwrap();
        assert_eq!(ntriples::parse(&text).unwrap().len(), 10);
    }

    #[test]
    fn double_finish_is_safe() {
        let fs = FileSystem::new(LustreConfig::default());
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/p4.ttl", RdfFormat::Turtle, true);
        st.push(triples(2), None);
        let a = st.finish(None);
        let b = st.finish(None);
        assert_eq!(a, b);
    }

    #[test]
    fn sync_push_charges_caller_clock() {
        let fs = FileSystem::new(LustreConfig::default());
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/p5.ttl", RdfFormat::Turtle, false);
        let clock = VirtualClock::new();
        st.push(triples(1000), Some(&clock));
        assert!(clock.now().as_nanos() > 0, "sync mode bills the workflow");
    }

    #[test]
    fn thousands_of_stores_share_the_pool() {
        // The H5bench regression: many live stores must not exhaust host
        // threads. 2000 stores, a few triples each.
        let fs = FileSystem::new(LustreConfig::default());
        let stores: Vec<ProvenanceStore> = (0..2000)
            .map(|i| {
                let st = ProvenanceStore::new(
                    Arc::clone(&fs),
                    format!("/prov/many/p{i}.nt"),
                    RdfFormat::NTriples,
                    true,
                );
                st.push(triples(3), None);
                st
            })
            .collect();
        for st in &stores {
            assert!(st.finish(None) > 0);
        }
        assert_eq!(fs.walk_files("/prov/many").unwrap().len(), 2000);
    }

    #[test]
    fn commit_never_leaves_tmp_behind_on_success() {
        let fs = FileSystem::new(LustreConfig::default());
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/pt.nt", RdfFormat::NTriples, false);
        st.push(triples(4), None);
        st.finish(None);
        assert!(fs.exists("/prov/pt.nt"));
        assert!(!fs.exists("/prov/pt.nt.tmp"), "tmp renamed away");
    }

    #[test]
    fn transient_write_failure_is_retried_to_success() {
        let fs = FileSystem::new(LustreConfig::default());
        let plan = FaultPlan::new(11);
        plan.add_rule(
            FaultRule::fail(FaultOp::WriteAt, FsError::Io)
                .on_path("/prov/pr.nt.tmp")
                .times(2),
        );
        fs.install_faults(Arc::clone(&plan));
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/pr.nt", RdfFormat::NTriples, false)
            .with_retry(RetryPolicy {
                max_attempts: 3,
                backoff_ns: 1_000,
                ..RetryPolicy::default()
            });
        st.push(triples(7), None);
        let clock = VirtualClock::new();
        let bytes = st.finish(Some(&clock));
        assert!(bytes > 0, "two transient failures, third attempt lands");
        assert!(!st.degraded());
        assert_eq!(st.last_error(), Some(FsError::Io), "retries leave a trace");
        assert_eq!(plan.injected(), 2);
        // Exponential backoff charged to the rank: 1000 + 2000 ns.
        assert!(clock.now().as_nanos() >= 3_000);
        let text = String::from_utf8(fs_read(&fs, "/prov/pr.nt")).unwrap();
        assert_eq!(ntriples::parse(&text).unwrap().len(), 7);
    }

    #[test]
    fn permanent_failure_degrades_never_silently_zero() {
        let fs = FileSystem::new(LustreConfig::default());
        let plan = FaultPlan::new(12);
        plan.add_rule(FaultRule::fail(FaultOp::WriteAt, FsError::NoSpace).on_path("pd.nt.tmp"));
        fs.install_faults(plan);
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/pd.nt", RdfFormat::NTriples, false)
            .with_retry(RetryPolicy {
                max_attempts: 2,
                backoff_ns: 0,
                ..RetryPolicy::default()
            });
        st.push(triples(5), None);
        assert_eq!(st.finish(None), 0);
        assert!(st.degraded(), "flush dropped, state surfaced");
        assert_eq!(st.last_error(), Some(FsError::NoSpace));
        assert_eq!(st.dropped_flushes(), 1);
        // The committed path never appeared; the graph is still in memory.
        assert!(!fs.exists("/prov/pd.nt"));
        // Clearing the fault lets a later flush recover everything.
        fs.clear_faults();
        assert!(st.finish(None) > 0);
        assert!(!st.degraded());
        let text = String::from_utf8(fs_read(&fs, "/prov/pd.nt")).unwrap();
        assert_eq!(ntriples::parse(&text).unwrap().len(), 5);
    }

    #[test]
    fn crash_mid_flush_leaves_only_torn_tmp() {
        let fs = FileSystem::new(LustreConfig::default());
        let plan = FaultPlan::new(13);
        plan.add_rule(
            FaultRule::crash(FaultOp::WriteAt).on_path("pc.nt.tmp").torn(10),
        );
        fs.install_faults(plan);
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/pc.nt", RdfFormat::NTriples, false);
        st.push(triples(6), None);
        assert_eq!(st.finish(None), 0);
        assert!(st.degraded());
        assert_eq!(st.last_error(), Some(FsError::Crashed));
        // The committed path is untouched; the torn prefix sits in tmp.
        assert!(!fs.exists("/prov/pc.nt"));
        assert_eq!(fs.stat("/prov/pc.nt.tmp").unwrap().size, 10);
        // A crashed process never writes again, even after faults clear.
        fs.clear_faults();
        assert_eq!(st.finish(None), 0);
        assert_eq!(st.dropped_flushes(), 2);
        assert!(!fs.exists("/prov/pc.nt"));
    }

    #[test]
    fn crash_between_write_and_rename_keeps_previous_commit() {
        let fs = FileSystem::new(LustreConfig::default());
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/pv.nt", RdfFormat::NTriples, false);
        st.push(triples(3), None);
        let committed = st.finish(None);
        assert!(committed > 0);
        // Now arm a crash on the rename: the NEW flush dies after fully
        // writing tmp, and the committed file must still be the OLD graph.
        let plan = FaultPlan::new(14);
        plan.add_rule(FaultRule::crash(FaultOp::Rename).on_path("pv.nt.tmp"));
        fs.install_faults(plan);
        st.push(triples(30), None);
        assert_eq!(st.finish(None), 0);
        let text = String::from_utf8(fs_read(&fs, "/prov/pv.nt")).unwrap();
        assert_eq!(
            ntriples::parse(&text).unwrap().len(),
            3,
            "reader sees the previous complete sub-graph, never a mix"
        );
    }

    #[test]
    fn periodic_flushes_append_delta_segments() {
        let fs = FileSystem::new(LustreConfig::default());
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/ds.nt", RdfFormat::NTriples, false);
        st.push(triples_from(0, 3), None);
        st.flush(None); // first flush: full snapshot
        assert!(fs.exists("/prov/ds.nt"));
        assert_eq!(st.segment_count(), 0);

        st.push(triples_from(3, 2), None);
        st.flush(None); // second flush: delta segment 0
        assert!(fs.exists("/prov/ds.nt.d000000.nt"));
        assert_eq!(st.segment_count(), 1);
        // The snapshot was NOT rewritten: it still holds only 3 triples.
        let snap = String::from_utf8(fs_read(&fs, "/prov/ds.nt")).unwrap();
        assert_eq!(ntriples::parse(&snap).unwrap().len(), 3);
        // The segment holds exactly the delta.
        let seg = String::from_utf8(fs_read(&fs, "/prov/ds.nt.d000000.nt")).unwrap();
        assert_eq!(ntriples::parse(&seg).unwrap().len(), 2);

        st.push(triples_from(5, 4), None);
        st.flush(None); // delta segment 1
        assert_eq!(st.segment_count(), 2);
        assert!(fs.exists("/prov/ds.nt.d000001.nt"));

        // finish compacts: one snapshot with everything, segments gone.
        let bytes = st.finish(None);
        assert!(bytes > 0);
        assert_eq!(st.segment_count(), 0);
        assert!(!fs.exists("/prov/ds.nt.d000000.nt"));
        assert!(!fs.exists("/prov/ds.nt.d000001.nt"));
        let full = String::from_utf8(fs_read(&fs, "/prov/ds.nt")).unwrap();
        assert_eq!(ntriples::parse(&full).unwrap().len(), 9);
    }

    #[test]
    fn empty_delta_flush_writes_no_segment() {
        let fs = FileSystem::new(LustreConfig::default());
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/de.nt", RdfFormat::NTriples, false);
        st.push(triples(3), None);
        st.flush(None);
        st.flush(None); // nothing new since the snapshot
        assert_eq!(st.segment_count(), 0);
        assert!(!fs.exists("/prov/de.nt.d000000.nt"));
    }

    #[test]
    fn compaction_folds_segments_every_k_appends() {
        let fs = FileSystem::new(LustreConfig::default());
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/dc.nt", RdfFormat::NTriples, false)
            .with_delta(true, 2);
        st.push(triples_from(0, 1), None);
        st.flush(None); // snapshot
        st.push(triples_from(1, 1), None);
        st.flush(None); // segment 0
        assert_eq!(st.segment_count(), 1);
        st.push(triples_from(2, 1), None);
        st.flush(None); // segment 1 → compaction fires
        assert_eq!(st.segment_count(), 0, "compact_every=2 folded both");
        assert!(!fs.exists("/prov/dc.nt.d000000.nt"));
        assert!(!fs.exists("/prov/dc.nt.d000001.nt"));
        let snap = String::from_utf8(fs_read(&fs, "/prov/dc.nt")).unwrap();
        assert_eq!(ntriples::parse(&snap).unwrap().len(), 3);
        // Sequence numbers keep rising after compaction: no name reuse.
        st.push(triples_from(3, 1), None);
        st.flush(None);
        assert!(fs.exists("/prov/dc.nt.d000002.nt"));
    }

    #[test]
    fn legacy_mode_rewrites_full_file_every_flush() {
        let fs = FileSystem::new(LustreConfig::default());
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/lg.nt", RdfFormat::NTriples, false)
            .with_delta(false, 0);
        st.push(triples_from(0, 3), None);
        st.flush(None);
        st.push(triples_from(3, 3), None);
        st.flush(None);
        assert_eq!(st.segment_count(), 0);
        assert!(!fs.exists("/prov/lg.nt.d000000.nt"));
        let snap = String::from_utf8(fs_read(&fs, "/prov/lg.nt")).unwrap();
        assert_eq!(ntriples::parse(&snap).unwrap().len(), 6, "full rewrite");
    }

    #[test]
    fn failed_delta_append_rewinds_watermark_and_retries_same_segment() {
        let fs = FileSystem::new(LustreConfig::default());
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/dr.nt", RdfFormat::NTriples, false)
            .with_retry(RetryPolicy {
                max_attempts: 1,
                backoff_ns: 0,
                ..RetryPolicy::default()
            });
        st.push(triples_from(0, 2), None);
        st.flush(None); // snapshot
        // Fail the first delta append outright (one attempt, no retry).
        let plan = FaultPlan::new(21);
        plan.add_rule(
            FaultRule::fail(FaultOp::WriteAt, FsError::Io)
                .on_path("dr.nt.d000000.nt.tmp")
                .times(1),
        );
        fs.install_faults(plan);
        st.push(triples_from(2, 3), None);
        st.flush(None);
        assert!(st.degraded());
        assert_eq!(st.segment_count(), 0);
        assert_eq!(st.dropped_flushes(), 1);
        // Next flush retries the SAME delta under the SAME segment name.
        fs.clear_faults();
        st.flush(None);
        assert!(!st.degraded());
        assert_eq!(st.segment_count(), 1);
        let seg = String::from_utf8(fs_read(&fs, "/prov/dr.nt.d000000.nt")).unwrap();
        assert_eq!(
            ntriples::parse(&seg).unwrap().len(),
            3,
            "rewound watermark re-serializes the dropped delta"
        );
    }

    #[test]
    fn crash_on_delta_append_keeps_snapshot_and_earlier_segments() {
        let fs = FileSystem::new(LustreConfig::default());
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/dx.nt", RdfFormat::NTriples, false);
        st.push(triples_from(0, 2), None);
        st.flush(None); // snapshot
        st.push(triples_from(2, 2), None);
        st.flush(None); // segment 0
        let plan = FaultPlan::new(22);
        plan.add_rule(
            FaultRule::crash(FaultOp::Rename).on_path("dx.nt.d000001.nt.tmp"),
        );
        fs.install_faults(plan);
        st.push(triples_from(4, 2), None);
        st.flush(None); // segment 1 crashes at the rename
        assert_eq!(st.last_error(), Some(FsError::Crashed));
        // Durable state: snapshot (2 triples) + segment 0 (2 triples), and
        // the fully-written-but-unrenamed tmp for segment 1 — exactly what
        // the merge's orphan-tmp adoption recovers.
        let snap = String::from_utf8(fs_read(&fs, "/prov/dx.nt")).unwrap();
        assert_eq!(ntriples::parse(&snap).unwrap().len(), 2);
        let seg0 = String::from_utf8(fs_read(&fs, "/prov/dx.nt.d000000.nt")).unwrap();
        assert_eq!(ntriples::parse(&seg0).unwrap().len(), 2);
        assert!(!fs.exists("/prov/dx.nt.d000001.nt"));
        assert!(fs.exists("/prov/dx.nt.d000001.nt.tmp"));
        // Crashed: finish never compacts away the durable segments.
        assert_eq!(st.finish(None), 0);
        assert!(fs.exists("/prov/dx.nt.d000000.nt"));
    }

    fn fs_read(fs: &Arc<FileSystem>, path: &str) -> Vec<u8> {
        let ino = fs.lookup(path).unwrap();
        let size = fs.stat(path).unwrap().size;
        fs.read_at(ino, 0, size).unwrap().to_vec()
    }

    // ---- checksummed framing -------------------------------------------

    #[test]
    fn checksummed_snapshot_frames_and_stays_legacy_parseable() {
        let fs = FileSystem::new(LustreConfig::default());
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/ck.nt", RdfFormat::NTriples, false)
            .with_checksums(true);
        st.push(triples(10), None);
        assert!(st.finish(None) > 0);
        let text = String::from_utf8(fs_read(&fs, "/prov/ck.nt")).unwrap();
        let f = frame::decode(&text).expect("framed");
        assert_eq!(f.kind, FrameKind::Snapshot);
        assert_eq!(f.guid, frame::store_guid("/prov/ck.nt"));
        assert!(f.intact());
        assert_eq!(ntriples::parse(&f.payload).unwrap().len(), 10);
        // Frame lines are comments: a legacy reader parses the file whole.
        assert_eq!(ntriples::parse(&text).unwrap().len(), 10);
    }

    #[test]
    fn framed_segments_chain_across_flushes_and_compaction() {
        let fs = FileSystem::new(LustreConfig::default());
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/cc.nt", RdfFormat::NTriples, false)
            .with_checksums(true);
        st.push(triples_from(0, 2), None);
        st.flush(None); // ordinal 0: snapshot
        st.push(triples_from(2, 2), None);
        st.flush(None); // ordinal 1: delta segment
        st.push(triples_from(4, 2), None);
        assert!(st.finish(None) > 0); // ordinal 2: compacted snapshot

        let snap = frame::decode(
            &String::from_utf8(fs_read(&fs, "/prov/cc.nt")).unwrap(),
        )
        .unwrap();
        assert_eq!(snap.kind, FrameKind::Snapshot);
        assert_eq!(snap.ordinal, 2, "ordinals rise across compaction");
        // The compacted snapshot chains off the delta segment's value.
        let (_, seg_chain) = frame::encode(
            FrameKind::Delta,
            snap.guid,
            1,
            {
                let (_, c0) = frame::encode(
                    FrameKind::Snapshot,
                    snap.guid,
                    0,
                    frame::CHAIN_START,
                    "",
                    1,
                );
                c0
            },
            "",
            1,
        );
        assert_eq!(snap.prev, seg_chain);
    }

    #[test]
    fn failed_framed_flush_retries_under_the_same_ordinal() {
        let fs = FileSystem::new(LustreConfig::default());
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/cf2.nt", RdfFormat::NTriples, false)
            .with_checksums(true)
            .with_retry(RetryPolicy {
                max_attempts: 1,
                backoff_ns: 0,
                ..RetryPolicy::default()
            });
        st.push(triples_from(0, 2), None);
        st.flush(None); // ordinal 0 committed
        let plan = FaultPlan::new(41);
        plan.add_rule(
            FaultRule::fail(FaultOp::WriteAt, FsError::Io)
                .on_path("cf2.nt.d000000.nt.tmp")
                .times(1),
        );
        fs.install_faults(plan);
        st.push(triples_from(2, 2), None);
        st.flush(None); // delta drops; ordinal must NOT advance
        assert!(st.degraded());
        fs.clear_faults();
        st.flush(None); // retry lands
        let seg = frame::decode(
            &String::from_utf8(fs_read(&fs, "/prov/cf2.nt.d000000.nt")).unwrap(),
        )
        .unwrap();
        assert_eq!(seg.ordinal, 1, "failed commit did not consume an ordinal");
        let snap = frame::decode(
            &String::from_utf8(fs_read(&fs, "/prov/cf2.nt")).unwrap(),
        )
        .unwrap();
        assert_eq!(seg.prev, snap.chain, "chain is gapless despite the retry");
    }

    #[test]
    fn checksummed_turtle_snapshot_is_one_batch() {
        let fs = FileSystem::new(LustreConfig::default());
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/ct.ttl", RdfFormat::Turtle, false)
            .with_checksums(true);
        st.push(triples(200), None);
        assert!(st.finish(None) > 0);
        let f = frame::decode(
            &String::from_utf8(fs_read(&fs, "/prov/ct.ttl")).unwrap(),
        )
        .unwrap();
        assert_eq!(f.batches_total, 1, "Turtle payload is all-or-nothing");
        let (g, _) = turtle::parse(&f.payload).unwrap();
        assert_eq!(g.len(), 200);
    }

    // ---- bounded queue -------------------------------------------------

    /// Parks every shared-pool worker until released, so push batches pile
    /// up in the intake queue deterministically. Tests that gate the pool
    /// must serialize on [`pool_gate_lock`], or two gates fight over the
    /// same workers and deadlock each other.
    struct Gate {
        /// (workers currently parked, released)
        state: Mutex<(usize, bool)>,
        cv: Condvar,
    }

    impl Gate {
        fn block_all_workers() -> Arc<Gate> {
            let gate = Arc::new(Gate {
                state: Mutex::new((0, false)),
                cv: Condvar::new(),
            });
            let n = pool::workers();
            for _ in 0..n {
                let g = Arc::clone(&gate);
                pool::submit(Box::new(move || {
                    let mut st = g.state.lock();
                    st.0 += 1;
                    g.cv.notify_all();
                    while !st.1 {
                        g.cv.wait(&mut st);
                    }
                }));
            }
            // Wait until every worker is provably parked.
            let mut st = gate.state.lock();
            while st.0 < n {
                gate.cv.wait(&mut st);
            }
            drop(st);
            gate
        }

        fn release(&self) {
            let mut st = self.state.lock();
            st.1 = true;
            self.cv.notify_all();
        }
    }

    /// Releases the gate even if the test panics, so a failing assertion
    /// can't wedge the shared pool for the rest of the suite.
    struct GateGuard(Arc<Gate>);
    impl Drop for GateGuard {
        fn drop(&mut self) {
            self.0.release();
        }
    }

    fn pool_gate_lock() -> &'static Mutex<()> {
        static LOCK: std::sync::OnceLock<Mutex<()>> = std::sync::OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
    }

    #[test]
    fn shed_policy_bounds_queue_and_counts_losses() {
        let _serial = pool_gate_lock().lock();
        let fs = FileSystem::new(LustreConfig::default());
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/qs.nt", RdfFormat::NTriples, true)
            .with_queue(4, OverloadPolicy::Shed);
        let gate = GateGuard(Gate::block_all_workers());
        // Four batches fill the queue; three more are shed, two triples each.
        for i in 0..4u64 {
            st.push(triples_from(i as usize * 10, 2), None);
        }
        assert_eq!(st.queue_depth(), 4, "queue at capacity");
        for i in 4..7u64 {
            st.push(triples_from(i as usize * 10, 2), None);
        }
        assert_eq!(st.queue_depth(), 4, "queue never exceeds capacity");
        assert_eq!(st.shed_batches(), 3);
        assert_eq!(st.shed_triples(), 6);
        assert_eq!(st.triples_pushed(), 14, "offered count includes shed");
        gate.0.release();
        let bytes = st.finish(None);
        assert!(bytes > 0);
        assert_eq!(st.queue_depth(), 0);
        let text = String::from_utf8(fs_read(&fs, "/prov/qs.nt")).unwrap();
        let g = ntriples::parse(&text).unwrap();
        assert_eq!(g.len(), 8, "admitted batches land, shed batches do not");
    }

    #[test]
    fn block_policy_stalls_producer_until_writers_catch_up() {
        let _serial = pool_gate_lock().lock();
        let fs = FileSystem::new(LustreConfig::default());
        let st = Arc::new(
            ProvenanceStore::new(Arc::clone(&fs), "/prov/qb.nt", RdfFormat::NTriples, true)
                .with_queue(1, OverloadPolicy::Block),
        );
        let gate = GateGuard(Gate::block_all_workers());
        st.push(triples_from(0, 1), None); // fills the queue
        assert_eq!(st.queue_depth(), 1);
        let st2 = Arc::clone(&st);
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let done2 = Arc::clone(&done);
        let producer = std::thread::spawn(move || {
            st2.push(triples_from(10, 1), None); // must block: queue is full
            done2.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(
            !done.load(Ordering::SeqCst),
            "producer blocked by backpressure while the queue is full"
        );
        assert_eq!(st.queue_depth(), 1, "capacity respected while blocked");
        gate.0.release();
        producer.join().unwrap();
        assert!(done.load(Ordering::SeqCst));
        assert!(st.finish(None) > 0);
        assert_eq!(st.shed_batches(), 0, "block policy sheds nothing");
        let text = String::from_utf8(fs_read(&fs, "/prov/qb.nt")).unwrap();
        assert_eq!(ntriples::parse(&text).unwrap().len(), 2, "both batches land");
    }

    // ---- circuit breaker -----------------------------------------------

    #[test]
    fn breaker_trips_skips_and_recovers_via_half_open_probe() {
        let fs = FileSystem::new(LustreConfig::default());
        let plan = FaultPlan::new(31);
        plan.add_rule(FaultRule::fail(FaultOp::WriteAt, FsError::Io).on_path("cb.nt.tmp"));
        fs.install_faults(Arc::clone(&plan));
        let clock = VirtualClock::new();
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/cb.nt", RdfFormat::NTriples, false)
            .with_retry(RetryPolicy {
                max_attempts: 1,
                backoff_ns: 0,
                ..RetryPolicy::default()
            })
            .with_breaker(2, 1_000)
            .with_clock(clock.clone());
        st.push(triples(5), None);
        st.flush(None); // failure 1 of 2: still closed
        assert_eq!(st.breaker_state(), BreakerState::Closed);
        st.flush(None); // failure 2 of 2: trips
        assert_eq!(st.breaker_state(), BreakerState::Open);
        assert_eq!(st.breaker_trips(), 1);
        assert_eq!(plan.injected(), 2);
        // Open breaker: flushes are skipped, the backend is left alone.
        st.flush(None);
        st.flush(None);
        assert_eq!(st.breaker_skipped(), 2);
        assert_eq!(plan.injected(), 2, "no write attempted while open");
        // Backoff elapses on the virtual clock; the backend heals; the
        // half-open probe succeeds and closes the breaker.
        clock.advance(SimDuration::from_nanos(2_000));
        fs.clear_faults();
        st.flush(None);
        assert_eq!(st.breaker_state(), BreakerState::Closed);
        assert!(!st.degraded());
        // Nothing was lost across trip/skip/recovery.
        let text = String::from_utf8(fs_read(&fs, "/prov/cb.nt")).unwrap();
        assert_eq!(ntriples::parse(&text).unwrap().len(), 5);
    }

    #[test]
    fn failed_half_open_probe_reopens_breaker() {
        let fs = FileSystem::new(LustreConfig::default());
        let plan = FaultPlan::new(32);
        plan.add_rule(FaultRule::fail(FaultOp::WriteAt, FsError::Io).on_path("cr.nt.tmp"));
        fs.install_faults(Arc::clone(&plan));
        let clock = VirtualClock::new();
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/cr.nt", RdfFormat::NTriples, false)
            .with_retry(RetryPolicy {
                max_attempts: 1,
                backoff_ns: 0,
                ..RetryPolicy::default()
            })
            .with_breaker(1, 1_000)
            .with_clock(clock.clone());
        st.push(triples(3), None);
        st.flush(None); // trips immediately (threshold 1)
        assert_eq!(st.breaker_state(), BreakerState::Open);
        assert_eq!(st.breaker_trips(), 1);
        clock.advance(SimDuration::from_nanos(1_500));
        st.flush(None); // half-open probe, still failing → reopens
        assert_eq!(st.breaker_state(), BreakerState::Open);
        assert_eq!(st.breaker_trips(), 2, "failed probe counts as a trip");
        // And the new backoff window is honored.
        st.flush(None);
        assert_eq!(st.breaker_skipped(), 1);
    }

    #[test]
    fn finish_bypasses_open_breaker() {
        let fs = FileSystem::new(LustreConfig::default());
        let plan = FaultPlan::new(33);
        plan.add_rule(FaultRule::fail(FaultOp::WriteAt, FsError::Io).on_path("cf.nt.tmp"));
        fs.install_faults(plan);
        let clock = VirtualClock::new();
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/cf.nt", RdfFormat::NTriples, false)
            .with_retry(RetryPolicy {
                max_attempts: 1,
                backoff_ns: 0,
                ..RetryPolicy::default()
            })
            .with_breaker(1, u64::MAX / 2)
            .with_clock(clock.clone());
        st.push(triples(4), None);
        st.flush(None); // trips; backoff effectively forever
        assert_eq!(st.breaker_state(), BreakerState::Open);
        fs.clear_faults();
        // finish is the run's last chance: it ignores the open breaker.
        assert!(st.finish(None) > 0);
        assert_eq!(st.breaker_state(), BreakerState::Closed);
        let text = String::from_utf8(fs_read(&fs, "/prov/cf.nt")).unwrap();
        assert_eq!(ntriples::parse(&text).unwrap().len(), 4);
    }

    // ---- write-ahead journal -------------------------------------------

    #[test]
    fn wal_group_commits_and_recycles_on_flush() {
        let fs = FileSystem::new(LustreConfig::default());
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/w1.nt", RdfFormat::NTriples, false)
            .with_wal(true, 3);
        // Below the group threshold nothing is appended — the records ride
        // in the buffer (the bounded exposure window).
        st.push(triples(2), None);
        assert_eq!(st.wal_records(), 0);
        assert_eq!(st.wal_commits(), 0);
        assert_eq!(st.wal_buffered(), 2);
        assert!(fs.lookup("/prov/w1.nt.w000000.nt").is_err());
        // Reaching the threshold commits everything buffered in a single
        // append: one frame per pushed chunk, contiguous ordinals.
        st.push(triples_from(2, 3), None);
        assert_eq!(st.wal_records(), 5);
        assert_eq!(st.wal_commits(), 1);
        assert_eq!(st.wal_buffered(), 0);
        let text = String::from_utf8(fs_read(&fs, "/prov/w1.nt.w000000.nt")).unwrap();
        let wal = frame::decode_wal(&text, frame::store_guid("/prov/w1.nt"));
        assert!(!wal.truncated);
        assert_eq!(wal.chunks, 2, "one frame per pushed chunk");
        assert_eq!(wal.records.len(), 5);
        assert_eq!(wal.records[0].0, 0, "record ordinal is the insertion index");
        assert!(wal.records[0].1.contains("urn:s0"));
        assert_eq!(wal.records[4].0, 4);
        // A flush boundary forces any partial tail out; the successful
        // commit then recycles the generation.
        st.push(triples_from(5, 1), None);
        assert_eq!(st.wal_buffered(), 1);
        st.flush(None);
        assert_eq!(st.wal_records(), 6);
        assert_eq!(st.wal_buffered(), 0);
        assert_eq!(st.wal_recycles(), 1);
        assert!(
            fs.lookup("/prov/w1.nt.w000000.nt").is_err(),
            "flushed generation is recycled"
        );
        // The next commit opens a fresh generation; duplicates of already
        // stored triples are never re-journaled.
        st.push(triples_from(6, 3), None);
        st.push(triples(5), None);
        assert!(fs.lookup("/prov/w1.nt.w000001.nt").is_ok());
        assert_eq!(st.wal_records(), 9);
        assert_eq!(st.wal_buffered(), 0);
        st.finish(None);
        assert!(
            fs.lookup("/prov/w1.nt.w000001.nt").is_err(),
            "finish recycles the journal too"
        );
        assert_eq!(st.wal_recycles(), 2);
        assert_eq!(st.wal_failed_appends(), 0);
        assert!(!st.degraded());
    }

    #[test]
    fn crashed_flush_loses_nothing_committed_to_the_journal() {
        let fs = FileSystem::new(LustreConfig::default());
        let plan = FaultPlan::new(9);
        plan.add_rule(FaultRule::crash(FaultOp::WriteAt).on_path("wc.nt.tmp"));
        fs.install_faults(plan);
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/wc.nt", RdfFormat::NTriples, false)
            .with_wal(true, 2);
        st.push(triples(6), None);
        st.flush(None); // the journal force-commits, then the snapshot crashes
        assert!(st.degraded());
        assert_eq!(st.wal_records(), 6, "every record reached the journal first");
        // Nothing committed, but the merge replays the journal whole.
        let (g, r) = crate::merge::merge_directory(&fs, "/prov");
        assert_eq!(g.len(), 6);
        assert_eq!(r.replayed_triples, 6);
        assert_eq!(r.wal_tails_truncated, 0);
    }

    #[test]
    fn failed_journal_append_retries_at_the_same_offset() {
        let fs = FileSystem::new(LustreConfig::default());
        let plan = FaultPlan::new(17);
        plan.add_rule(
            FaultRule::fail(FaultOp::WriteAt, FsError::Io)
                .on_path(".w000000.nt")
                .times(1),
        );
        fs.install_faults(plan);
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/wr.nt", RdfFormat::NTriples, false)
            .with_wal(true, 2);
        st.push(triples(2), None); // first group commit fails; records stay buffered
        assert_eq!(st.wal_failed_appends(), 1);
        assert_eq!(st.wal_records(), 0);
        assert_eq!(st.wal_buffered(), 2);
        assert!(!st.degraded(), "a failed journal append is not fatal");
        st.push(triples_from(2, 2), None); // retry lands at the same offset
        assert_eq!(st.wal_records(), 4);
        assert_eq!(st.wal_buffered(), 0);
        let text = String::from_utf8(fs_read(&fs, "/prov/wr.nt.w000000.nt")).unwrap();
        let wal = frame::decode_wal(&text, frame::store_guid("/prov/wr.nt"));
        assert!(!wal.truncated, "the retried chunk overwrote any torn prefix");
        assert_eq!(wal.records.len(), 4);
    }

    #[test]
    fn wal_disabled_writes_no_journal_files() {
        let fs = FileSystem::new(LustreConfig::default());
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/w0.nt", RdfFormat::NTriples, false);
        st.push(triples(10), None);
        st.flush(None);
        st.push(triples_from(10, 5), None);
        st.finish(None);
        let journals: Vec<String> = fs
            .walk_files("/prov")
            .unwrap()
            .into_iter()
            .filter(|p| frame::is_wal_path(p))
            .collect();
        assert!(journals.is_empty(), "unexpected journals: {journals:?}");
        assert_eq!(st.wal_records(), 0);
        assert_eq!(st.wal_commits(), 0);
        assert_eq!(st.wal_recycles(), 0);
    }

    fn parity_files_on_disk(fs: &Arc<FileSystem>, dir: &str) -> Vec<String> {
        fs.walk_files(dir)
            .unwrap_or_default()
            .into_iter()
            .filter(|p| frame::is_parity_path(p) && !p.ends_with(".tmp"))
            .collect()
    }

    #[test]
    fn parity_disabled_writes_no_parity_files() {
        let fs = FileSystem::new(LustreConfig::default());
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/q0.nt", RdfFormat::NTriples, false)
            .with_checksums(true)
            .with_delta(true, 0);
        st.push(triples(10), None);
        st.flush(None);
        st.push(triples_from(10, 5), None);
        st.finish(None);
        let pars = parity_files_on_disk(&fs, "/prov");
        assert!(pars.is_empty(), "unexpected parity files: {pars:?}");
        assert_eq!(st.parity_seals(), 0);
        assert_eq!(st.parity_failed(), 0);
    }

    #[test]
    fn parity_groups_seal_and_compaction_invalidates() {
        let fs = FileSystem::new(LustreConfig::default());
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/q1.nt", RdfFormat::NTriples, false)
            .with_checksums(true)
            .with_delta(true, 0)
            .with_parity(true, 2);
        // Four commits (snapshot + three segments) at group width 2: two
        // sealed parity files.
        for i in 0..4 {
            st.push(triples_from(i * 5, 5), None);
            st.flush(None);
        }
        assert_eq!(st.parity_seals(), 2, "two full groups sealed");
        let pars = parity_files_on_disk(&fs, "/prov");
        assert_eq!(pars.len(), 2, "{pars:?}");
        // Every sealed parity file decodes as an intact Parity frame and is
        // in the root cache the sealer will hand to the manifest.
        let rooted = st.committed_roots();
        for p in &pars {
            let ino = fs.lookup(p).unwrap();
            let n = fs.file_size(ino).unwrap();
            let text =
                String::from_utf8(fs.read_at(ino, 0, n).unwrap().to_vec()).unwrap();
            let framed = frame::decode(&text).expect("parity frame decodes");
            assert_eq!(framed.kind, FrameKind::Parity);
            assert!(framed.intact());
            assert!(rooted.iter().any(|(path, _, _)| path == p), "{p} not rooted");
        }
        // Compaction rewrites history: stale commit-plane parity would
        // "repair" the snapshot backwards, so it must vanish — replaced by
        // a forced seal over the surviving snapshot.
        st.finish(None);
        let pars = parity_files_on_disk(&fs, "/prov");
        assert_eq!(pars.len(), 1, "only the post-compaction seal remains: {pars:?}");
        assert_eq!(st.parity_files(), pars);
        // And the remaining group makes the final snapshot repairable.
        fs.unlink("/prov/q1.nt").unwrap();
        let rep = crate::scrub::scrub_directory(&fs, "/prov");
        assert_eq!(rep.repaired_files, vec!["/prov/q1.nt".to_string()], "{rep}");
    }

    #[test]
    fn parity_seal_failure_loses_redundancy_not_data() {
        let fs = FileSystem::new(LustreConfig::default());
        let plan = FaultPlan::new(41);
        // Every parity seal dies in flight; store commits are untouched.
        plan.add_rule(FaultRule::fail(FaultOp::WriteAt, FsError::Io).on_suffix(".par.tmp"));
        fs.install_faults(plan);
        let st = ProvenanceStore::new(Arc::clone(&fs), "/prov/q2.nt", RdfFormat::NTriples, false)
            .with_checksums(true)
            .with_delta(true, 0)
            .with_parity(true, 1);
        for i in 0..3 {
            st.push(triples_from(i * 4, 4), None);
            st.flush(None);
        }
        st.finish(None);
        assert_eq!(st.parity_seals(), 0);
        assert!(st.parity_failed() >= 3, "failed seals are counted");
        assert!(parity_files_on_disk(&fs, "/prov").is_empty());
        // The data plane never noticed: the merge recovers everything.
        let (g, report) = crate::merge::merge_directory(&fs, "/prov");
        assert_eq!(g.len(), 12);
        assert!(report.corrupt.is_empty(), "{report}");
        assert_eq!(report.chain_breaks, 0);
    }
}
