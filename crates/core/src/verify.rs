//! Run-level trust: the signed run manifest, the campaign ledger, and the
//! `verify` walk that judges a finished directory against them.
//!
//! The frame layer ([`crate::frame`]) proves *internal* consistency: every
//! batch carries a CRC, every file a chained header and a Merkle root. That
//! defeats bit rot, but not an adversary with file-system access — they can
//! rewrite a batch and patch its CRC *and* the footer root, leaving a file
//! the merge accepts without complaint. Trust therefore needs an anchor the
//! adversary cannot rewrite: a **run manifest** listing every committed
//! file's content root, signed with a keyed HMAC (key from the
//! `manifest_key` config knob, which the adversary does not hold), and a
//! **campaign ledger** chaining manifest digests digest-to-digest across
//! runs, so deleting or swapping a whole signed run is also visible.
//!
//! The split of duties with the merge is deliberate. The merge stays
//! availability-first: it salvages, quarantines rot, and replays journals
//! without a key. `verify` is integrity-first: it re-walks the directory
//! against the manifest and classifies every file as
//! [`FileVerdict::Verified`], `Tampered` (internally consistent but not
//! what was signed), `Damaged` (CRC-visible rot — honest damage, already
//! handled by the merge tier), `Missing`, or `Unsigned` (pre-manifest
//! legacy runs, which must keep working, never error). The two tiers
//! compose: [`quarantine_tampered`] renames what verify condemns so the
//! next merge excludes it, and a re-verify reads the quarantined bytes and
//! returns the same verdicts — verification is idempotent.
//!
//! The manifest's `sig` line carries an `alg=` token so an asymmetric
//! scheme can slot in behind the same format later; `hmac-sha256` is the
//! only algorithm this version signs or accepts.

use crate::frame::{self, FrameKind};
use provio_hpcfs::FileSystem;
use provio_simrt::SimTime;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

/// File name of the signed run manifest, written into the store directory.
pub const MANIFEST_NAME: &str = "MANIFEST.provio";

/// File name of the append-only campaign ledger, next to the manifest.
pub const LEDGER_NAME: &str = "CAMPAIGN.provio";

/// First-line magic of the manifest; the trailing digit is the version.
pub const MANIFEST_MAGIC: &str = "# PROVIO-MANIFEST1";

/// Is `path` a trust-layer artifact (the manifest or the ledger, possibly
/// wrapped in commit-protocol suffixes)? The merge never parses these and
/// never adopts a manifest tmp as an orphan store; `verify` owns them.
pub fn is_trust_artifact(path: &str) -> bool {
    let p = path.strip_suffix(".tmp").unwrap_or(path);
    let p = p.strip_suffix(".quarantine").unwrap_or(p);
    let name = p.rsplit('/').next().unwrap_or(p);
    name == MANIFEST_NAME || name == LEDGER_NAME
}

/// One rank's outcome as recorded in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankEntry {
    pub pid: u32,
    pub degraded: bool,
    pub triples: u64,
}

/// One committed file as recorded in the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    pub path: String,
    /// Content root: the frame Merkle root for framed files
    /// (`mode=merkle`), the SHA-256 of the raw bytes otherwise
    /// (`mode=raw`, legacy unframed stores).
    pub root: [u8; 32],
    pub merkle: bool,
    pub bytes: u64,
}

/// A parsed run manifest (signature judged separately, against the key).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Run GUID: FNV-1a over the sorted `(path, root)` pairs, so a re-run
    /// over identical bytes signs the identical manifest.
    pub run: u64,
    pub files: Vec<ManifestEntry>,
    pub ranks: Vec<RankEntry>,
}

/// What sealing a run produced: the run GUID and the manifest digest now
/// chained into the campaign ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManifestInfo {
    pub run: u64,
    pub digest: [u8; 32],
    pub files: usize,
}

/// First 8 hex digits of SHA-256 of the key: enough to tell "edited after
/// signing" apart from "verified with the wrong key" in reports, without
/// leaking the key.
fn key_id(key: &str) -> String {
    sha2::hex(&sha2::sha256(key.as_bytes()))[..8].to_string()
}

fn read_file(fs: &Arc<FileSystem>, path: &str) -> Option<Vec<u8>> {
    let ino = fs.lookup(path).ok()?;
    let md = fs.stat(path).ok()?;
    fs.read_at(ino, 0, md.size).ok().map(|b| b.to_vec())
}

/// Tmp-then-rename commit, the same protocol the store uses, so a crash
/// mid-write leaves a `.tmp` the merge and verify both ignore.
fn commit(fs: &Arc<FileSystem>, path: &str, bytes: &[u8]) -> Result<(), String> {
    let tmp = format!("{path}.tmp");
    let now = SimTime::ZERO;
    let ino = fs
        .create_file(&tmp, false, "provio", now)
        .map_err(|e| format!("{e:?}"))?;
    fs.truncate_ino(ino, 0, now).map_err(|e| format!("{e:?}"))?;
    fs.write_at(ino, 0, bytes, now).map_err(|e| format!("{e:?}"))?;
    fs.rename(&tmp, path, now).map_err(|e| format!("{e:?}"))
}

/// Content root of a file's bytes: the frame Merkle root when the file is
/// framed (snapshot, delta segment, or WAL generation — `file_root` handles
/// the concatenated-chunk case), the SHA-256 of the raw bytes otherwise.
fn content_root(bytes: &[u8]) -> ([u8; 32], bool) {
    if let Ok(text) = std::str::from_utf8(bytes) {
        if let Some(root) = frame::file_root(text) {
            return (root, true);
        }
    }
    (sha2::sha256(bytes), false)
}

fn manifest_path(dir: &str) -> String {
    format!("{}/{MANIFEST_NAME}", dir.trim_end_matches('/'))
}

fn ledger_path(dir: &str) -> String {
    format!("{}/{LEDGER_NAME}", dir.trim_end_matches('/'))
}

/// Render the manifest text: header, one `file` line per committed file
/// (path last, so paths may contain spaces), one `rank` line per rank, and
/// the `sig` line whose HMAC covers every byte before it.
fn render_manifest(manifest: &Manifest, key: &str) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "{MANIFEST_MAGIC} run={:016x} files={} ranks={}\n",
        manifest.run,
        manifest.files.len(),
        manifest.ranks.len()
    );
    for e in &manifest.files {
        let _ = writeln!(
            out,
            "file root={} mode={} bytes={} path={}",
            sha2::hex(&e.root),
            if e.merkle { "merkle" } else { "raw" },
            e.bytes,
            e.path
        );
    }
    for r in &manifest.ranks {
        let _ = writeln!(
            out,
            "rank pid={} outcome={} triples={}",
            r.pid,
            if r.degraded { "degraded" } else { "finished" },
            r.triples
        );
    }
    let mac = sha2::hmac_sha256(key.as_bytes(), out.as_bytes());
    let _ = writeln!(
        out,
        "sig alg=hmac-sha256 keyid={} hmac={}",
        key_id(key),
        sha2::hex(&mac)
    );
    out
}

/// A manifest parsed off disk, before any trust decision: the claims plus
/// the signature fields and how many bytes the signature covers.
struct ParsedManifest {
    manifest: Manifest,
    alg: String,
    keyid: String,
    hmac: String,
    signed_len: usize,
}

fn parse_hex32(s: &str) -> Option<[u8; 32]> {
    if s.len() != 64 {
        return None;
    }
    let mut out = [0u8; 32];
    for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
        let hi = (chunk[0] as char).to_digit(16)?;
        let lo = (chunk[1] as char).to_digit(16)?;
        out[i] = ((hi << 4) | lo) as u8;
    }
    Some(out)
}

fn parse_manifest(text: &str) -> Option<ParsedManifest> {
    // The signature is the last line; everything before it is signed.
    let sig_off = text.rfind("\nsig ")? + 1;
    let tail = &text[sig_off..];
    if tail.trim_end().contains('\n') {
        return None; // content after the signature line
    }
    let (mut alg, mut keyid, mut hmac) = (None, None, None);
    for tok in tail.trim_end().strip_prefix("sig ")?.split(' ') {
        match tok.split_once('=')? {
            ("alg", v) => alg = Some(v.to_string()),
            ("keyid", v) => keyid = Some(v.to_string()),
            ("hmac", v) => hmac = Some(v.to_string()),
            _ => return None,
        }
    }
    let body = &text[..sig_off];
    let mut lines = body.lines();
    let header = lines.next()?.strip_prefix(MANIFEST_MAGIC)?.trim_start();
    let (mut run, mut nfiles, mut nranks) = (None, None, None);
    for tok in header.split(' ') {
        match tok.split_once('=')? {
            ("run", v) => run = u64::from_str_radix(v, 16).ok(),
            ("files", v) => nfiles = v.parse::<usize>().ok(),
            ("ranks", v) => nranks = v.parse::<usize>().ok(),
            _ => return None,
        }
    }
    let mut manifest = Manifest {
        run: run?,
        files: Vec::new(),
        ranks: Vec::new(),
    };
    for line in lines {
        if let Some(rest) = line.strip_prefix("file ") {
            // `path=` is the last token and may contain spaces.
            let at = rest.find(" path=")?;
            let path = rest[at + " path=".len()..].to_string();
            let (mut root, mut merkle, mut bytes) = (None, None, None);
            for tok in rest[..at].split(' ') {
                match tok.split_once('=')? {
                    ("root", v) => root = parse_hex32(v),
                    ("mode", "merkle") => merkle = Some(true),
                    ("mode", "raw") => merkle = Some(false),
                    ("bytes", v) => bytes = v.parse::<u64>().ok(),
                    _ => return None,
                }
            }
            manifest.files.push(ManifestEntry {
                path,
                root: root?,
                merkle: merkle?,
                bytes: bytes?,
            });
        } else if let Some(rest) = line.strip_prefix("rank ") {
            let (mut pid, mut degraded, mut triples) = (None, None, None);
            for tok in rest.split(' ') {
                match tok.split_once('=')? {
                    ("pid", v) => pid = v.parse::<u32>().ok(),
                    ("outcome", "finished") => degraded = Some(false),
                    ("outcome", "degraded") => degraded = Some(true),
                    ("triples", v) => triples = v.parse::<u64>().ok(),
                    _ => return None,
                }
            }
            manifest.ranks.push(RankEntry {
                pid: pid?,
                degraded: degraded?,
                triples: triples?,
            });
        } else {
            return None;
        }
    }
    if manifest.files.len() != nfiles? || manifest.ranks.len() != nranks? {
        return None; // declared counts disagree with the lines present
    }
    Some(ParsedManifest {
        manifest,
        alg: alg?,
        keyid: keyid?,
        hmac: hmac?,
        signed_len: sig_off,
    })
}

/// Commit-time root cache handed to the sealing pass by the writers: path
/// → `(committed bytes, Merkle root)`, as collected from
/// [`crate::store::ProvenanceStore::committed_roots`].
pub type RootCache = HashMap<String, (u64, [u8; 32])>;

/// Walk the finished run directory, compute every committed file's content
/// root, and commit the signed manifest (tmp-then-rename). Deterministic:
/// the same directory bytes and key produce byte-identical manifests.
pub fn write_manifest(
    fs: &Arc<FileSystem>,
    dir: &str,
    key: &str,
    ranks: &[RankEntry],
) -> Result<ManifestInfo, String> {
    write_manifest_with_roots(fs, dir, key, ranks, &RootCache::new())
}

/// [`write_manifest`] with a commit-time root cache: a walked file whose
/// on-disk byte count matches its cache entry takes the cached root
/// instead of being re-read and re-CRC'd — the encoder already folded
/// that root when it framed the commit, so this is the same value
/// [`frame::file_root`] would recompute, just without the second full
/// pass over every store byte. The *file list* still comes from the
/// directory walk, never from the cache: files the store did not write
/// (journal generations, a crashed sibling's segments, foreign files) and
/// files whose size disagrees with the cache fall back to the slow path.
/// The manifest is byte-identical either way.
pub fn write_manifest_with_roots(
    fs: &Arc<FileSystem>,
    dir: &str,
    key: &str,
    ranks: &[RankEntry],
    roots: &RootCache,
) -> Result<ManifestInfo, String> {
    let dir = dir.trim_end_matches('/');
    let mut files = fs.walk_files(dir).map_err(|e| format!("{e:?}"))?;
    files.sort();
    files.retain(|p| {
        !p.ends_with(".tmp") && !p.ends_with(".quarantine") && !is_trust_artifact(p)
    });
    let mut entries = Vec::with_capacity(files.len());
    let mut acc = String::new();
    for path in files {
        let cached = roots.get(&path).and_then(|&(n, root)| {
            let md = fs.stat(&path).ok()?;
            (md.size == n).then_some((root, true, n))
        });
        let (root, merkle, len) = match cached {
            Some(hit) => hit,
            None => {
                let bytes = read_file(fs, &path)
                    .ok_or_else(|| format!("unreadable store file {path}"))?;
                let (root, merkle) = content_root(&bytes);
                (root, merkle, bytes.len() as u64)
            }
        };
        acc.push_str(&path);
        acc.push(' ');
        acc.push_str(&sha2::hex(&root));
        acc.push('\n');
        entries.push(ManifestEntry {
            path,
            root,
            merkle,
            bytes: len,
        });
    }
    let manifest = Manifest {
        run: frame::fnv1a64(acc.as_bytes()),
        files: entries,
        ranks: ranks.to_vec(),
    };
    let text = render_manifest(&manifest, key);
    commit(fs, &manifest_path(dir), text.as_bytes())?;
    Ok(ManifestInfo {
        run: manifest.run,
        digest: sha2::sha256(text.as_bytes()),
        files: manifest.files.len(),
    })
}

/// One sealed run in the campaign ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerRecord {
    pub run: u64,
    /// SHA-256 of the run's full manifest file.
    pub manifest: [u8; 32],
    /// The previous record's manifest digest (`None` for the first run),
    /// chaining the campaign root-to-root independently of frame chaining.
    pub prev: Option<[u8; 32]>,
}

/// The campaign ledger as read off disk: the verified-prefix records, and
/// whether a torn tail was cut or the digest chain is broken.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Ledger {
    pub records: Vec<LedgerRecord>,
    pub truncated: bool,
    pub chained: bool,
}

fn parse_ledger_line(line: &str) -> Option<LedgerRecord> {
    let (mut run, mut manifest, mut prev) = (None, None, None);
    for tok in line.split(' ') {
        match tok.split_once('=')? {
            ("run", v) => run = u64::from_str_radix(v, 16).ok(),
            ("manifest", v) => manifest = parse_hex32(v),
            ("prev", "-") => prev = Some(None),
            ("prev", v) => prev = Some(Some(parse_hex32(v)?)),
            _ => return None,
        }
    }
    Some(LedgerRecord {
        run: run?,
        manifest: manifest?,
        prev: prev?,
    })
}

/// Read the campaign ledger, tolerating a torn tail: the ledger is a
/// concatenation of WAL-framed chunks (one per sealed run), so everything
/// up to the first damaged chunk is recovered and the rest reported, never
/// parsed — the same discipline as journal generations.
pub fn read_ledger(fs: &Arc<FileSystem>, dir: &str) -> Option<Ledger> {
    let path = ledger_path(dir);
    let bytes = read_file(fs, &path)?;
    let mut out = Ledger {
        chained: true,
        ..Ledger::default()
    };
    let Ok(text) = String::from_utf8(bytes) else {
        out.truncated = true;
        return Some(out);
    };
    let wal = frame::decode_wal(&text, frame::store_guid(&path));
    out.truncated = wal.truncated;
    for (_, line) in &wal.records {
        match parse_ledger_line(line) {
            Some(rec) => out.records.push(rec),
            None => {
                out.truncated = true;
                break;
            }
        }
    }
    for (i, rec) in out.records.iter().enumerate() {
        let want = if i == 0 {
            None
        } else {
            Some(out.records[i - 1].manifest)
        };
        if rec.prev != want {
            out.chained = false;
        }
    }
    Some(out)
}

/// Chain a sealed run's manifest digest into the campaign ledger.
/// Idempotent: re-sealing the same manifest appends nothing. A torn tail
/// from a crashed earlier append is recovered by rewriting the verified
/// prefix — records, ordinals, and frame chain re-encode byte-identically,
/// so an undamaged ledger round-trips unchanged. The whole file commits
/// tmp-then-rename.
pub fn append_ledger(
    fs: &Arc<FileSystem>,
    dir: &str,
    run: u64,
    digest: [u8; 32],
) -> Result<(), String> {
    let path = ledger_path(dir);
    let existing = read_ledger(fs, dir).unwrap_or_default();
    if existing
        .records
        .last()
        .is_some_and(|r| r.manifest == digest)
    {
        return Ok(());
    }
    let guid = frame::store_guid(&path);
    let mut records = existing.records;
    records.push(LedgerRecord {
        run,
        manifest: digest,
        prev: None, // recomputed below, like every other record's
    });
    let mut out = String::new();
    let mut chain = frame::CHAIN_START;
    let mut prev: Option<[u8; 32]> = None;
    for (i, rec) in records.iter().enumerate() {
        let prev_hex = match prev {
            Some(d) => sha2::hex(&d),
            None => "-".to_string(),
        };
        let line = format!(
            "run={:016x} manifest={} prev={prev_hex}\n",
            rec.run,
            sha2::hex(&rec.manifest)
        );
        let (chunk, c) = frame::encode(FrameKind::Wal, guid, i as u64, chain, &line, usize::MAX);
        out.push_str(&chunk);
        chain = c;
        prev = Some(rec.manifest);
    }
    commit(fs, &path, out.as_bytes())
}

/// Sign the finished run directory and chain it into the campaign ledger —
/// what [`crate::tracker::TrackerRegistry::finish_all`] calls when the
/// `manifest` knob is armed.
pub fn seal_run(
    fs: &Arc<FileSystem>,
    dir: &str,
    key: &str,
    ranks: &[RankEntry],
) -> Result<ManifestInfo, String> {
    seal_run_with_roots(fs, dir, key, ranks, &RootCache::new())
}

/// [`seal_run`] with the writers' commit-time root cache (see
/// [`write_manifest_with_roots`]) — what `finish_all` actually calls, so
/// sealing costs one directory walk and two small commits instead of a
/// full re-read of every store byte.
pub fn seal_run_with_roots(
    fs: &Arc<FileSystem>,
    dir: &str,
    key: &str,
    ranks: &[RankEntry],
    roots: &RootCache,
) -> Result<ManifestInfo, String> {
    let info = write_manifest_with_roots(fs, dir, key, ranks, roots)?;
    append_ledger(fs, dir, info.run, info.digest)?;
    Ok(info)
}

/// What `verify` concluded about one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileVerdict {
    /// Content root matches the signed manifest.
    Verified,
    /// No signed manifest covers this file (pre-manifest legacy run).
    Unsigned,
    /// CRC-visible damage — honest rot, the merge tier's business, already
    /// salvaged or quarantined there. Damage costs completeness, not trust.
    Damaged,
    /// Listed in the manifest but absent on disk (no quarantined copy).
    Missing,
    /// Internally consistent but not what was signed: rewritten content,
    /// an edited manifest, or a broken ledger.
    Tampered,
}

impl FileVerdict {
    pub fn as_str(self) -> &'static str {
        match self {
            FileVerdict::Verified => "verified",
            FileVerdict::Unsigned => "unsigned",
            FileVerdict::Damaged => "damaged",
            FileVerdict::Missing => "missing",
            FileVerdict::Tampered => "tampered",
        }
    }
}

impl fmt::Display for FileVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One file's verdict with a human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileCheck {
    pub path: String,
    pub verdict: FileVerdict,
    pub detail: String,
}

/// The full result of verifying one run directory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    pub dir: String,
    /// Run GUID claimed by the manifest, when one parsed.
    pub run: Option<u64>,
    pub manifest_present: bool,
    /// The manifest parsed and its HMAC verified under the given key.
    pub manifest_ok: bool,
    /// The ledger's digest chain is intact and seals this manifest (or
    /// there is legitimately nothing to seal — an unsigned legacy run).
    pub ledger_ok: bool,
    pub checks: Vec<FileCheck>,
}

impl VerifyReport {
    pub fn count(&self, verdict: FileVerdict) -> usize {
        self.checks.iter().filter(|c| c.verdict == verdict).count()
    }

    /// Everything signed, everything sealed, nothing tampered or missing.
    /// Damage (CRC-visible rot) costs completeness, not trust — the
    /// counterpart of `RunReport::is_complete`, which ignores tamper.
    pub fn is_trusted(&self) -> bool {
        self.manifest_present
            && self.manifest_ok
            && self.ledger_ok
            && self.count(FileVerdict::Tampered) == 0
            && self.count(FileVerdict::Missing) == 0
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let manifest = if !self.manifest_present {
            "no manifest"
        } else if self.manifest_ok {
            "manifest signed"
        } else {
            "manifest untrusted"
        };
        let ledger = if !self.ledger_ok {
            "ledger broken"
        } else if self.manifest_present && self.manifest_ok {
            "ledger sealed"
        } else {
            "no ledger"
        };
        write!(
            f,
            "verify {}: {} — {} verified, {} tampered, {} damaged, {} missing, \
             {} unsigned; {manifest}; {ledger}",
            self.dir,
            if self.is_trusted() {
                "TRUSTED"
            } else {
                "NOT TRUSTED"
            },
            self.count(FileVerdict::Verified),
            self.count(FileVerdict::Tampered),
            self.count(FileVerdict::Damaged),
            self.count(FileVerdict::Missing),
            self.count(FileVerdict::Unsigned),
        )?;
        for c in &self.checks {
            if c.verdict != FileVerdict::Verified {
                write!(f, "\n  {:9} {} — {}", c.verdict.as_str(), c.path, c.detail)?;
            }
        }
        Ok(())
    }
}

/// Judge one file's bytes against its manifest entry. Framed files are
/// judged by recomputed Merkle root — CRC-visible damage is `Damaged` (the
/// rot tier already handles it), an internally consistent root mismatch is
/// `Tampered` (a CRC-patched rewrite passes every frame check; only the
/// signed root catches it). Raw-mode files have no CRCs to tell the two
/// apart, so any byte change is `Tampered`.
fn judge(bytes: &[u8], entry: &ManifestEntry) -> (FileVerdict, String) {
    if !entry.merkle {
        return if sha2::sha256(bytes) == entry.root {
            (FileVerdict::Verified, "content hash matches".to_string())
        } else {
            (
                FileVerdict::Tampered,
                "content hash differs from the signed root".to_string(),
            )
        };
    }
    let Ok(text) = std::str::from_utf8(bytes) else {
        return (
            FileVerdict::Damaged,
            "framed file is no longer valid UTF-8".to_string(),
        );
    };
    if frame::is_wal_path(&entry.path) {
        let wal = frame::decode_wal(text, frame::store_guid(&entry.path));
        if wal.truncated {
            return (
                FileVerdict::Damaged,
                "journal tail torn or bit-rotted".to_string(),
            );
        }
        return if frame::file_root(text) == Some(entry.root) {
            (FileVerdict::Verified, "journal root matches".to_string())
        } else {
            (
                FileVerdict::Tampered,
                "journal root differs from the signed root".to_string(),
            )
        };
    }
    match frame::decode(text) {
        Ok(f) => {
            if f.batches_corrupt > 0 {
                (
                    FileVerdict::Damaged,
                    format!("{} of {} batches failed CRC", f.batches_corrupt, f.batches_total),
                )
            } else if f.computed_root == entry.root {
                (FileVerdict::Verified, "Merkle root matches".to_string())
            } else {
                (
                    FileVerdict::Tampered,
                    "internally consistent but the Merkle root differs from the signed root"
                        .to_string(),
                )
            }
        }
        Err(frame::FrameError::Quarantine(why)) => {
            (FileVerdict::Damaged, format!("frame damage: {why}"))
        }
        Err(frame::FrameError::NotFramed) => (
            FileVerdict::Tampered,
            "framed file replaced by unframed content".to_string(),
        ),
    }
}

/// Check one manifest entry against the directory. A live file is judged
/// in place; a file the merge (or an earlier verify) already renamed to
/// `<path>.quarantine` is judged from the quarantined bytes, so re-running
/// verify after quarantine returns the same verdict — sticky, idempotent.
fn check_entry(fs: &Arc<FileSystem>, entry: &ManifestEntry) -> FileCheck {
    let (bytes, quarantined) = match read_file(fs, &entry.path) {
        Some(b) => (b, false),
        None => match read_file(fs, &format!("{}.quarantine", entry.path)) {
            Some(b) => (b, true),
            None => {
                return FileCheck {
                    path: entry.path.clone(),
                    verdict: FileVerdict::Missing,
                    detail: "listed in the manifest but absent on disk".to_string(),
                }
            }
        },
    };
    let (verdict, mut detail) = judge(&bytes, entry);
    if quarantined {
        detail.push_str(" (quarantined copy)");
    }
    FileCheck {
        path: entry.path.clone(),
        verdict,
        detail,
    }
}

/// Walk ledger → manifest → file roots over a finished run directory and
/// classify every file. Never errors: a pre-manifest legacy directory
/// verifies as all-`Unsigned` (and merges exactly as before), a tampered
/// one comes back with file-level blast radius.
pub fn verify_directory(fs: &Arc<FileSystem>, dir: &str, key: &str) -> VerifyReport {
    let dir = dir.trim_end_matches('/');
    let mut report = VerifyReport {
        dir: dir.to_string(),
        ..VerifyReport::default()
    };
    let mpath = manifest_path(dir);
    let disk = fs.walk_files(dir).unwrap_or_default();
    let ledger = read_ledger(fs, dir);

    let Some(bytes) = read_file(fs, &mpath) else {
        // Legacy (pre-manifest) run: everything is simply unsigned. A
        // ledger with no manifest means the manifest was deleted — the
        // ledger's whole point is making that visible.
        for p in &disk {
            if p.ends_with(".tmp") || p.ends_with(".quarantine") || is_trust_artifact(p) {
                continue;
            }
            report.checks.push(FileCheck {
                path: p.clone(),
                verdict: FileVerdict::Unsigned,
                detail: "no run manifest".to_string(),
            });
        }
        report.ledger_ok = match ledger {
            None => true,
            Some(_) => {
                report.checks.push(FileCheck {
                    path: mpath,
                    verdict: FileVerdict::Missing,
                    detail: "campaign ledger present but the run manifest is gone".to_string(),
                });
                false
            }
        };
        return report;
    };
    report.manifest_present = true;

    let parsed = std::str::from_utf8(&bytes).ok().and_then(parse_manifest);
    let untrusted_manifest = |report: &mut VerifyReport, check: FileCheck, paths: &[String]| {
        report.checks.push(check);
        for p in paths {
            report.checks.push(FileCheck {
                path: p.clone(),
                verdict: FileVerdict::Unsigned,
                detail: "manifest untrusted, file cannot be judged".to_string(),
            });
        }
    };
    let Some(pm) = parsed else {
        let paths: Vec<String> = disk
            .iter()
            .filter(|p| {
                !p.ends_with(".tmp") && !p.ends_with(".quarantine") && !is_trust_artifact(p)
            })
            .cloned()
            .collect();
        untrusted_manifest(
            &mut report,
            FileCheck {
                path: mpath,
                verdict: FileVerdict::Tampered,
                detail: "manifest is malformed".to_string(),
            },
            &paths,
        );
        return report;
    };
    report.run = Some(pm.manifest.run);

    let mac = sha2::hex(&sha2::hmac_sha256(key.as_bytes(), &bytes[..pm.signed_len]));
    if pm.alg != "hmac-sha256" || mac != pm.hmac {
        let detail = if pm.keyid != key_id(key) {
            format!(
                "manifest signed under keyid {} but verified with keyid {}",
                pm.keyid,
                key_id(key)
            )
        } else {
            "signature mismatch: manifest edited after signing".to_string()
        };
        let paths: Vec<String> = pm.manifest.files.iter().map(|e| e.path.clone()).collect();
        untrusted_manifest(
            &mut report,
            FileCheck {
                path: mpath,
                verdict: FileVerdict::Tampered,
                detail,
            },
            &paths,
        );
        return report;
    }
    report.manifest_ok = true;

    for entry in &pm.manifest.files {
        report.checks.push(check_entry(fs, entry));
    }
    // Files on disk the signed manifest never listed: planted after
    // signing. (A quarantined copy of a listed file is that file's sticky
    // verdict, not a plant.)
    let listed: HashSet<&str> = pm.manifest.files.iter().map(|e| e.path.as_str()).collect();
    for p in &disk {
        if p.ends_with(".tmp") || is_trust_artifact(p) {
            continue;
        }
        let base = p.strip_suffix(".quarantine").unwrap_or(p);
        if listed.contains(base) {
            continue;
        }
        report.checks.push(FileCheck {
            path: p.clone(),
            verdict: FileVerdict::Tampered,
            detail: "present on disk but not in the signed manifest".to_string(),
        });
    }

    let digest = sha2::sha256(&bytes);
    match ledger {
        None => {
            report.checks.push(FileCheck {
                path: ledger_path(dir),
                verdict: FileVerdict::Missing,
                detail: "campaign ledger absent for a signed run".to_string(),
            });
        }
        Some(l) => {
            let sealed = l.chained && l.records.last().is_some_and(|r| r.manifest == digest);
            report.ledger_ok = sealed;
            if !sealed {
                let detail = if !l.chained {
                    "ledger digest chain broken".to_string()
                } else if l.truncated {
                    "ledger tail torn or truncated; this run's manifest is not sealed"
                        .to_string()
                } else {
                    "this run's manifest is not sealed in the ledger".to_string()
                };
                report.checks.push(FileCheck {
                    path: ledger_path(dir),
                    verdict: FileVerdict::Tampered,
                    detail,
                });
            }
        }
    }
    report
}

/// Rename every tampered store file to `<path>.quarantine` so the next
/// merge excludes it — the same sidelining the merge applies to rot.
/// Trust artifacts stay in place: renaming a tampered manifest would erase
/// the evidence the report points at. Returns the paths renamed.
pub fn quarantine_tampered(fs: &Arc<FileSystem>, report: &VerifyReport) -> Vec<String> {
    // Repair precedence: a condemned file whose parity group can still
    // make it whole belongs to the scrub pass, not to quarantine.
    // Quarantine is the over-tolerance fallback — renaming a repairable
    // member would cost the group a survivor it may need.
    let repairable = crate::scrub::repairable_paths(fs, &report.dir);
    let mut renamed = Vec::new();
    for c in &report.checks {
        if c.verdict != FileVerdict::Tampered
            || is_trust_artifact(&c.path)
            || c.path.ends_with(".quarantine")
            || repairable.contains(&c.path)
            || !fs.exists(&c.path)
        {
            continue;
        }
        if fs
            .rename(&c.path, &format!("{}.quarantine", c.path), SimTime::ZERO)
            .is_ok()
        {
            renamed.push(c.path.clone());
        }
    }
    renamed
}

#[cfg(test)]
mod tests {
    use super::*;
    use provio_hpcfs::LustreConfig;

    fn fs() -> Arc<FileSystem> {
        FileSystem::new(LustreConfig::default())
    }

    fn put(fs: &Arc<FileSystem>, path: &str, bytes: &[u8]) {
        if let Some((dir, _)) = path.rsplit_once('/') {
            let _ = fs.mkdir_all(dir, "provio", SimTime::ZERO);
        }
        let ino = match fs.lookup(path) {
            Ok(ino) => ino,
            Err(_) => fs.create_file(path, false, "provio", SimTime::ZERO).unwrap(),
        };
        fs.truncate_ino(ino, 0, SimTime::ZERO).unwrap();
        fs.write_at(ino, 0, bytes, SimTime::ZERO).unwrap();
    }

    fn get(fs: &Arc<FileSystem>, path: &str) -> Vec<u8> {
        read_file(fs, path).unwrap()
    }

    const KEY: &str = "test-campaign-key";

    /// A signed two-file run: one framed snapshot, one legacy raw file.
    fn sealed_run(fs: &Arc<FileSystem>) -> ManifestInfo {
        let snap = "/provio/prov_p0.nt";
        let (text, _) = frame::encode(
            FrameKind::Snapshot,
            frame::store_guid(snap),
            0,
            frame::CHAIN_START,
            "<urn:a> <urn:p> <urn:b> .\n<urn:a> <urn:p> <urn:c> .\n",
            1,
        );
        put(fs, snap, text.as_bytes());
        put(fs, "/provio/prov_p1.nt", b"<urn:x> <urn:p> <urn:y> .\n");
        seal_run(
            fs,
            "/provio",
            KEY,
            &[
                RankEntry { pid: 0, degraded: false, triples: 2 },
                RankEntry { pid: 1, degraded: false, triples: 1 },
            ],
        )
        .unwrap()
    }

    #[test]
    fn clean_run_seals_verifies_and_reseals_idempotently() {
        let fs = fs();
        let info = sealed_run(&fs);
        assert_eq!(info.files, 2);
        let report = verify_directory(&fs, "/provio", KEY);
        assert!(report.is_trusted(), "{report}");
        assert_eq!(report.count(FileVerdict::Verified), 2);
        assert_eq!(report.run, Some(info.run));
        // Re-verify is idempotent, byte for byte.
        assert_eq!(report, verify_directory(&fs, "/provio", KEY));
        // Re-sealing the identical directory appends nothing to the ledger.
        let again = sealed_run(&fs);
        assert_eq!(again.digest, info.digest);
        let ledger = read_ledger(&fs, "/provio").unwrap();
        assert_eq!(ledger.records.len(), 1);
        assert!(ledger.chained && !ledger.truncated);
    }

    #[test]
    fn cached_roots_seal_byte_identically_and_stale_entries_fall_back() {
        let fs = fs();
        let snap = "/provio/prov_p0.nt";
        let (text, _, root) = frame::encode_with_root(
            FrameKind::Snapshot,
            frame::store_guid(snap),
            0,
            frame::CHAIN_START,
            "<urn:a> <urn:p> <urn:b> .\n<urn:a> <urn:p> <urn:c> .\n",
            1,
        );
        put(&fs, snap, text.as_bytes());
        put(&fs, "/provio/prov_p1.nt", b"<urn:x> <urn:p> <urn:y> .\n");
        // Slow path first; capture the manifest bytes.
        seal_run(&fs, "/provio", KEY, &[]).unwrap();
        let slow = get(&fs, "/provio/MANIFEST.provio");
        // Cached path: the framed file's root comes from the cache (a
        // bogus-but-size-matching entry would be trusted — prove the hit
        // happens by poisoning the cache and watching the manifest change).
        let mut cache = RootCache::new();
        cache.insert(snap.to_string(), (text.len() as u64, root));
        seal_run_with_roots(&fs, "/provio", KEY, &[], &cache).unwrap();
        assert_eq!(
            get(&fs, "/provio/MANIFEST.provio"),
            slow,
            "cache hit signs the same bytes as the full re-read"
        );
        assert!(verify_directory(&fs, "/provio", KEY).is_trusted());
        let mut poisoned = RootCache::new();
        poisoned.insert(snap.to_string(), (text.len() as u64, [0xAB; 32]));
        seal_run_with_roots(&fs, "/provio", KEY, &[], &poisoned).unwrap();
        assert_ne!(
            get(&fs, "/provio/MANIFEST.provio"),
            slow,
            "a size-matching cache entry is used verbatim — the hit is real"
        );
        // Stale entry (size mismatch) is ignored: the same poisoned root
        // under the wrong byte count falls back to the re-read and the
        // manifest comes out right again.
        let mut stale = RootCache::new();
        stale.insert(snap.to_string(), (text.len() as u64 + 1, [0xAB; 32]));
        seal_run_with_roots(&fs, "/provio", KEY, &[], &stale).unwrap();
        assert_eq!(get(&fs, "/provio/MANIFEST.provio"), slow);
        assert!(verify_directory(&fs, "/provio", KEY).is_trusted());
    }

    #[test]
    fn repairable_tamper_is_scrubbed_not_quarantined() {
        let fs = fs();
        // A parity-protected store, compacted and sealed: the snapshot's
        // parity group survives `finish` (forced seal).
        let st = crate::store::ProvenanceStore::new(
            Arc::clone(&fs),
            "/provio/prov_p0.nt",
            crate::config::RdfFormat::NTriples,
            false,
        )
        .with_delta(true, 0)
        .with_checksums(true)
        .with_parity(true, 2);
        for i in 0..4 {
            st.push(
                vec![provio_rdf::Triple::new(
                    provio_rdf::Subject::iri(format!("urn:s{i}")),
                    provio_rdf::Iri::new("urn:p"),
                    provio_rdf::Term::iri("urn:o"),
                )],
                None,
            );
            st.flush(None);
        }
        st.finish(None);
        seal_run(&fs, "/provio", KEY, &[RankEntry { pid: 0, degraded: false, triples: 4 }])
            .unwrap();
        assert!(verify_directory(&fs, "/provio", KEY).is_trusted());

        // Adversary rewrites the snapshot with a CRC-patched forgery —
        // only the manifest catches it, and parity can still repair it.
        let snap = "/provio/prov_p0.nt";
        let original = read_file(&fs, snap).unwrap();
        let (forged, _) = frame::encode(
            FrameKind::Snapshot,
            frame::store_guid(snap),
            0,
            frame::CHAIN_START,
            "<urn:evil> <urn:p> <urn:evil> .\n",
            1,
        );
        put(&fs, snap, forged.as_bytes());
        let report = verify_directory(&fs, "/provio", KEY);
        assert_eq!(report.count(FileVerdict::Tampered), 1, "{report}");
        // Precedence: quarantine must never fire on a repairable file.
        assert!(quarantine_tampered(&fs, &report).is_empty());
        assert!(fs.exists(snap), "repairable file left in place for the scrub");

        // Scrub restores the sealed bytes; the file re-verifies Verified —
        // no sticky verdict survives a successful repair.
        let scrubbed = crate::scrub::scrub_directory(&fs, "/provio");
        assert_eq!(scrubbed.repaired_files, vec![snap.to_string()], "{scrubbed}");
        assert_eq!(read_file(&fs, snap).unwrap(), original, "repair is byte-identical");
        let again = verify_directory(&fs, "/provio", KEY);
        assert!(again.is_trusted(), "{again}");
        assert!(again
            .checks
            .iter()
            .any(|c| c.path == snap && c.verdict == FileVerdict::Verified));
    }

    #[test]
    fn store_commit_roots_match_the_sealers_re_read() {
        // The cache the store hands to `finish_all` holds exactly what
        // `file_root` recomputes from the committed bytes — snapshot and
        // delta segments alike, compacted-away segments dropped.
        let fs = fs();
        let st = crate::store::ProvenanceStore::new(
            Arc::clone(&fs),
            "/provio/prov_p9.nt",
            crate::config::RdfFormat::NTriples,
            false,
        )
        .with_delta(true, 0)
        .with_checksums(true);
        for i in 0..3 {
            st.push(
                vec![provio_rdf::Triple::new(
                    provio_rdf::Subject::iri(format!("urn:s{i}")),
                    provio_rdf::Iri::new("urn:p"),
                    provio_rdf::Term::iri("urn:o"),
                )],
                None,
            );
            st.flush(None);
        }
        st.finish(None);
        let roots = st.committed_roots();
        assert!(!roots.is_empty());
        for (path, n, root) in &roots {
            let bytes = read_file(&fs, path).expect("cached path exists");
            assert_eq!(bytes.len() as u64, *n, "{path}");
            let text = std::str::from_utf8(&bytes).unwrap();
            assert_eq!(frame::file_root(text), Some(*root), "{path}");
        }
        // finish() compacts into a snapshot: no cached segment may point
        // at an unlinked file.
        for (path, _, _) in &roots {
            assert!(fs.exists(path), "stale cache entry for {path}");
        }
    }

    #[test]
    fn crc_patched_rewrite_is_caught_only_by_the_manifest() {
        let fs = fs();
        sealed_run(&fs);
        // Adversary rewrites the snapshot wholesale with a *valid* frame —
        // same guid, same ordinal, every CRC and the footer root patched to
        // match the forged content. The frame tier cannot object.
        let snap = "/provio/prov_p0.nt";
        let (forged, _) = frame::encode(
            FrameKind::Snapshot,
            frame::store_guid(snap),
            0,
            frame::CHAIN_START,
            "<urn:evil> <urn:p> <urn:evil> .\n",
            1,
        );
        put(&fs, snap, forged.as_bytes());
        let framed = frame::decode(&forged).unwrap();
        assert!(framed.intact(), "the forgery is internally consistent");
        assert_eq!(framed.declared_root, Some(framed.computed_root));

        let report = verify_directory(&fs, "/provio", KEY);
        assert!(!report.is_trusted());
        assert_eq!(report.count(FileVerdict::Tampered), 1, "{report}");
        assert_eq!(report.count(FileVerdict::Verified), 1, "blast radius is one file");
        // Quarantine, then re-verify: the verdict sticks.
        assert_eq!(quarantine_tampered(&fs, &report), vec![snap.to_string()]);
        assert!(fs.exists(&format!("{snap}.quarantine")));
        let again = verify_directory(&fs, "/provio", KEY);
        assert_eq!(again.count(FileVerdict::Tampered), 1);
        assert!(again.checks.iter().any(|c| c.path == snap
            && c.verdict == FileVerdict::Tampered
            && c.detail.ends_with("(quarantined copy)")));
        assert!(quarantine_tampered(&fs, &again).is_empty());
    }

    #[test]
    fn edited_manifest_fails_its_signature() {
        let fs = fs();
        sealed_run(&fs);
        let path = manifest_path("/provio");
        let text = String::from_utf8(get(&fs, &path)).unwrap();
        // Flip one hex digit of a signed root.
        let at = text.find("root=").unwrap() + 5;
        let mut edited = text.into_bytes();
        edited[at] = if edited[at] == b'0' { b'1' } else { b'0' };
        put(&fs, &path, &edited);
        let report = verify_directory(&fs, "/provio", KEY);
        assert!(!report.is_trusted());
        assert!(report.manifest_present && !report.manifest_ok);
        assert!(report.checks.iter().any(|c| c.path == path
            && c.verdict == FileVerdict::Tampered
            && c.detail.contains("edited after signing")));
        // Files cannot be judged under an untrusted manifest.
        assert_eq!(report.count(FileVerdict::Unsigned), 2);
    }

    #[test]
    fn wrong_key_names_both_keyids() {
        let fs = fs();
        sealed_run(&fs);
        let report = verify_directory(&fs, "/provio", "not-the-key");
        assert!(!report.is_trusted());
        let check = report
            .checks
            .iter()
            .find(|c| c.path.ends_with(MANIFEST_NAME))
            .unwrap();
        assert_eq!(check.verdict, FileVerdict::Tampered);
        assert!(check.detail.contains(&key_id(KEY)));
        assert!(check.detail.contains(&key_id("not-the-key")));
    }

    #[test]
    fn ledger_truncation_deletion_and_unlisted_files_are_flagged() {
        let fs = fs();
        sealed_run(&fs);
        let lpath = ledger_path("/provio");
        let ledger_bytes = get(&fs, &lpath);

        // Cut the ledger mid-chunk: the run is no longer sealed.
        put(&fs, &lpath, &ledger_bytes[..ledger_bytes.len() / 2]);
        let report = verify_directory(&fs, "/provio", KEY);
        assert!(!report.ledger_ok && !report.is_trusted());
        assert!(report
            .checks
            .iter()
            .any(|c| c.path == lpath && c.verdict == FileVerdict::Tampered));

        // Delete it outright: missing, and still untrusted.
        put(&fs, &lpath, &ledger_bytes); // restore first
        fs.unlink(&lpath).unwrap();
        let report = verify_directory(&fs, "/provio", KEY);
        assert!(!report.ledger_ok && !report.is_trusted());
        assert!(report
            .checks
            .iter()
            .any(|c| c.path == lpath && c.verdict == FileVerdict::Missing));

        // A file planted after signing is tamper, not background noise.
        put(&fs, "/provio/planted.nt", b"<urn:e> <urn:p> <urn:e> .\n");
        let report = verify_directory(&fs, "/provio", KEY);
        assert!(report.checks.iter().any(
            |c| c.path == "/provio/planted.nt" && c.verdict == FileVerdict::Tampered
        ));
    }

    #[test]
    fn legacy_directory_verifies_unsigned_with_no_false_positives() {
        let fs = fs();
        put(&fs, "/provio/prov_p7.nt", b"<urn:a> <urn:p> <urn:b> .\n");
        let report = verify_directory(&fs, "/provio", KEY);
        assert!(!report.is_trusted());
        assert!(!report.manifest_present);
        assert!(report.ledger_ok, "nothing to seal is not a broken seal");
        assert_eq!(report.count(FileVerdict::Unsigned), 1);
        assert_eq!(report.count(FileVerdict::Tampered), 0);
        assert_eq!(report.count(FileVerdict::Damaged), 0);
    }

    #[test]
    fn torn_ledger_tail_is_recovered_on_the_next_seal() {
        let fs = fs();
        let info = sealed_run(&fs);
        let lpath = ledger_path("/provio");
        let mut bytes = get(&fs, &lpath);
        let full = bytes.clone();
        // A crash mid-append leaves a torn half-chunk after the sealed one.
        bytes.extend_from_slice(&full[..full.len() / 3]);
        put(&fs, &lpath, &bytes);
        let torn = read_ledger(&fs, "/provio").unwrap();
        assert!(torn.truncated);
        assert_eq!(torn.records.len(), 1);
        // Appending a new digest rewrites the verified prefix and seals.
        append_ledger(&fs, "/provio", 42, [9u8; 32]).unwrap();
        let healed = read_ledger(&fs, "/provio").unwrap();
        assert!(!healed.truncated && healed.chained);
        assert_eq!(healed.records.len(), 2);
        assert_eq!(healed.records[0].manifest, info.digest);
        assert_eq!(healed.records[1].prev, Some(info.digest));
    }

    #[test]
    fn rot_stays_damaged_never_tampered() {
        let fs = fs();
        sealed_run(&fs);
        // Flip one payload byte without patching anything: the batch CRC
        // catches it — that is rot's signature, not an adversary's.
        let snap = "/provio/prov_p0.nt";
        let mut bytes = get(&fs, snap);
        let at = bytes
            .windows(7)
            .position(|w| w == b"<urn:a>")
            .unwrap();
        bytes[at + 5] = b'z';
        put(&fs, snap, &bytes);
        let report = verify_directory(&fs, "/provio", KEY);
        assert_eq!(report.count(FileVerdict::Damaged), 1, "{report}");
        assert_eq!(report.count(FileVerdict::Tampered), 0);
        // Damage costs completeness (the merge quarantines and counts it),
        // not trust: nobody forged anything.
        assert!(report.is_trusted());
    }

    #[test]
    fn trust_artifact_paths_are_recognized() {
        for p in [
            "/provio/MANIFEST.provio",
            "/provio/MANIFEST.provio.tmp",
            "/provio/CAMPAIGN.provio",
            "/d/CAMPAIGN.provio.quarantine",
            "MANIFEST.provio",
        ] {
            assert!(is_trust_artifact(p), "{p}");
        }
        for p in ["/provio/prov_p0.nt", "/provio/manifest.txt", "/MANIFEST.provio.nt"] {
            assert!(!is_trust_artifact(p), "{p}");
        }
    }
}
