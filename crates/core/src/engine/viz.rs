//! Graphviz visualization (the paper's Figures 4(b) and 9).
//!
//! Nodes are styled by super-class — Entity: yellow boxes, Activity: purple
//! ellipses, Agent: orange houses, Extensible: green notes — and a
//! highlight set (e.g. a queried lineage) renders in blue, matching the
//! paper's lineage figures.

use provio_model::{ontology, Guid, NodeClass, Relation};
use provio_rdf::{Graph, Iri, Subject, Term};
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

fn dot_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn style_for(class: NodeClass, highlighted: bool) -> String {
    let (shape, fill) = match class {
        NodeClass::Entity(_) => ("box", "#fff2ae"),
        NodeClass::Activity(_) => ("ellipse", "#cbb9e8"),
        NodeClass::Agent(_) => ("house", "#fdcdac"),
        NodeClass::Extensible(_) => ("note", "#b3e2cd"),
    };
    let color = if highlighted { "#1f5fd0" } else { "#555555" };
    let penwidth = if highlighted { "2.5" } else { "1.0" };
    format!(
        "shape={shape}, style=filled, fillcolor=\"{fill}\", color=\"{color}\", penwidth={penwidth}"
    )
}

/// Render `graph` as Graphviz DOT. Nodes/edges touching `highlight` are
/// emphasized in blue.
pub fn to_dot(graph: &Graph, highlight: &HashSet<Guid>) -> String {
    let mut out = String::from("digraph provio {\n  rankdir=RL;\n  node [fontsize=10];\n  edge [fontsize=9];\n");

    // Collect typed nodes.
    let mut classes: HashMap<Guid, NodeClass> = HashMap::new();
    for t in graph.match_pattern(
        &provio_rdf::TriplePattern::any().with_predicate(Iri::new(provio_rdf::ns::RDF_TYPE)),
    ) {
        let Subject::Iri(s) = &t.subject else { continue };
        let (Some(guid), Some(class)) = (
            Guid::from_iri(s),
            t.object.as_iri().and_then(|i| NodeClass::from_iri(i.as_str())),
        ) else {
            continue;
        };
        classes.insert(guid, class);
    }

    let mut ids: Vec<&Guid> = classes.keys().collect();
    ids.sort();
    for guid in &ids {
        let class = classes[*guid];
        let label = ontology::node_from_graph(graph, guid)
            .map(|n| n.label)
            .filter(|l| !l.is_empty())
            .unwrap_or_else(|| guid.local().to_string());
        let _ = writeln!(
            out,
            "  \"{}\" [label=\"{}\\n({})\", {}];",
            dot_escape(guid.as_str()),
            dot_escape(&label),
            class.local_name(),
            style_for(class, highlight.contains(*guid)),
        );
    }

    // Relation edges between known nodes.
    let mut edges: Vec<String> = Vec::new();
    for rel in Relation::ALL {
        for t in graph
            .match_pattern(&provio_rdf::TriplePattern::any().with_predicate(Iri::new(rel.iri())))
        {
            let Subject::Iri(s) = &t.subject else { continue };
            let Some(src) = Guid::from_iri(s) else { continue };
            let Some(dst) = t.object.as_iri().and_then(Guid::from_iri) else {
                continue;
            };
            if !classes.contains_key(&src) || !classes.contains_key(&dst) {
                continue;
            }
            let hl = highlight.contains(&src) && highlight.contains(&dst);
            let style = if hl {
                ", color=\"#1f5fd0\", penwidth=2.2, fontcolor=\"#1f5fd0\""
            } else {
                ""
            };
            edges.push(format!(
                "  \"{}\" -> \"{}\" [label=\"{}\"{}];",
                dot_escape(src.as_str()),
                dot_escape(dst.as_str()),
                rel.local_name(),
                style
            ));
        }
    }
    edges.sort();
    for e in edges {
        let _ = writeln!(out, "{e}");
    }
    out.push_str("}\n");
    out
}

/// Render only the neighborhood of `focus` (the queried sub-graph).
pub fn to_dot_lineage(graph: &Graph, focus: &Guid, lineage: &[Guid]) -> String {
    let mut highlight: HashSet<Guid> = lineage.iter().cloned().collect();
    highlight.insert(focus.clone());
    to_dot(graph, &highlight)
}

// Re-export used by to_dot; keeps the Term import honest.
#[allow(dead_code)]
fn _object_is_term(t: &Term) -> bool {
    t.as_iri().is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use provio_model::{ActivityClass, EntityClass, GuidGen, ProvNode, ProvRecord};

    fn sample() -> (Graph, Guid, Guid) {
        let mut g = Graph::new();
        let gen = GuidGen::new(1);
        let file = GuidGen::data_object("File", "", "/decimate.h5");
        let act = gen.activity("H5Dwrite");
        let recs = vec![
            ProvRecord::new(ProvNode::new(file.clone(), EntityClass::File, "/decimate.h5"))
                .with_relation(Relation::WasWrittenBy, act.clone()),
            ProvRecord::new(ProvNode::new(act.clone(), ActivityClass::Write, "H5Dwrite")),
        ];
        for r in recs {
            for t in provio_model::record_to_triples(&r) {
                g.insert(&t);
            }
        }
        (g, file, act)
    }

    #[test]
    fn dot_contains_styled_nodes_and_edges() {
        let (g, file, act) = sample();
        let dot = to_dot(&g, &HashSet::new());
        assert!(dot.starts_with("digraph provio {"));
        assert!(dot.contains("shape=box"), "entity boxes");
        assert!(dot.contains("shape=ellipse"), "activity ellipses");
        assert!(dot.contains("wasWrittenBy"));
        assert!(dot.contains(file.as_str()));
        assert!(dot.contains(act.as_str()));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn highlight_marks_lineage_blue() {
        let (g, file, act) = sample();
        let hl: HashSet<Guid> = [file.clone(), act].into_iter().collect();
        let dot = to_dot(&g, &hl);
        assert!(dot.contains("#1f5fd0"));
        let dot_lineage = to_dot_lineage(&g, &file, &[]);
        assert!(dot_lineage.contains("penwidth=2.5") || dot_lineage.contains("#1f5fd0"));
    }

    #[test]
    fn labels_are_escaped() {
        let mut g = Graph::new();
        let id = GuidGen::data_object("File", "", "/weird\"name");
        let rec = ProvRecord::new(ProvNode::new(id, EntityClass::File, "/weird\"name"));
        for t in provio_model::record_to_triples(&rec) {
            g.insert(&t);
        }
        let dot = to_dot(&g, &HashSet::new());
        assert!(dot.contains("\\\""));
    }

    #[test]
    fn deterministic_output() {
        let (g, _, _) = sample();
        assert_eq!(to_dot(&g, &HashSet::new()), to_dot(&g, &HashSet::new()));
    }
}
