//! I/O statistics (the H5bench use case, paper §3.3): per-API counts,
//! accumulated durations, byte totals, and the distribution of operations
//! over time — "fine-grained information such as the total number of each
//! type of HDF5 I/O operations … the accumulated time cost for each type
//! … the HDF5 APIs invoked at a specific time point".

use provio_model::{ontology, ActivityClass, PropKey, PropValue};
use provio_rdf::Graph;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregated statistics for one activity class.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClassStats {
    pub count: u64,
    pub total_duration_ns: u64,
    pub total_bytes: u64,
}

impl ClassStats {
    pub fn mean_duration_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_duration_ns as f64 / self.count as f64
        }
    }
}

/// Statistics extracted from a provenance graph.
#[derive(Debug, Clone, Default)]
pub struct IoStats {
    pub by_class: BTreeMap<&'static str, ClassStats>,
    /// API-name level counts ("H5Dwrite" → n).
    pub by_api: BTreeMap<String, u64>,
    /// Histogram of activity timestamps (bucketed by `bucket_ns`).
    pub timeline: BTreeMap<u64, u64>,
    pub bucket_ns: u64,
}

impl IoStats {
    /// Compute statistics over all activity nodes in `graph`.
    pub fn from_graph(graph: &Graph, bucket_ns: u64) -> IoStats {
        let mut stats = IoStats {
            bucket_ns: bucket_ns.max(1),
            ..Default::default()
        };
        for class in ActivityClass::ALL {
            let mut cs = ClassStats::default();
            for guid in ontology::nodes_of_class(graph, class.into()) {
                let Some(node) = ontology::node_from_graph(graph, &guid) else {
                    continue;
                };
                cs.count += 1;
                if let Some(PropValue::Int(ns)) = node.prop(PropKey::ElapsedNs) {
                    cs.total_duration_ns += *ns as u64;
                }
                if let Some(PropValue::Int(b)) = node.prop(PropKey::Bytes) {
                    cs.total_bytes += *b as u64;
                }
                if let Some(PropValue::Int(ts)) = node.prop(PropKey::TimestampNs) {
                    let bucket = (*ts as u64) / stats.bucket_ns;
                    *stats.timeline.entry(bucket).or_insert(0) += 1;
                }
                *stats.by_api.entry(node.label.clone()).or_insert(0) += 1;
            }
            if cs.count > 0 {
                stats.by_class.insert(class.local_name(), cs);
            }
        }
        stats
    }

    pub fn total_ops(&self) -> u64 {
        self.by_class.values().map(|c| c.count).sum()
    }

    /// The class with the highest accumulated duration — the bottleneck
    /// the H5bench scientists look for.
    pub fn bottleneck(&self) -> Option<(&'static str, &ClassStats)> {
        self.by_class
            .iter()
            .max_by_key(|(_, c)| c.total_duration_ns)
            .map(|(k, v)| (*k, v))
    }

    /// Render a small aligned report.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<8} {:>10} {:>16} {:>14} {:>14}",
            "class", "count", "total time", "mean time", "bytes"
        );
        for (name, c) in &self.by_class {
            let _ = writeln!(
                out,
                "{:<8} {:>10} {:>14.3}ms {:>12.3}us {:>14}",
                name,
                c.count,
                c.total_duration_ns as f64 / 1e6,
                c.mean_duration_ns() / 1e3,
                c.total_bytes,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provio_model::{GuidGen, ProvNode, ProvRecord};
    use provio_rdf::Graph;

    fn graph_with_ops() -> Graph {
        let mut g = Graph::new();
        let gen = GuidGen::new(1);
        for i in 0..5u64 {
            let rec = ProvRecord::new(
                ProvNode::new(gen.activity("H5Dwrite"), ActivityClass::Write, "H5Dwrite")
                    .with_prop(PropKey::ElapsedNs, 1000 + i)
                    .with_prop(PropKey::TimestampNs, i * 1_000_000)
                    .with_prop(PropKey::Bytes, 4096u64),
            );
            for t in provio_model::record_to_triples(&rec) {
                g.insert(&t);
            }
        }
        for _ in 0..2 {
            let rec = ProvRecord::new(
                ProvNode::new(gen.activity("H5Dread"), ActivityClass::Read, "H5Dread")
                    .with_prop(PropKey::ElapsedNs, 50_000u64)
                    .with_prop(PropKey::TimestampNs, 500_000u64),
            );
            for t in provio_model::record_to_triples(&rec) {
                g.insert(&t);
            }
        }
        g
    }

    #[test]
    fn counts_and_durations() {
        let stats = IoStats::from_graph(&graph_with_ops(), 1_000_000);
        assert_eq!(stats.by_class["Write"].count, 5);
        assert_eq!(stats.by_class["Read"].count, 2);
        assert_eq!(stats.by_class["Write"].total_bytes, 5 * 4096);
        assert_eq!(stats.total_ops(), 7);
        assert_eq!(stats.by_api["H5Dwrite"], 5);
    }

    #[test]
    fn bottleneck_is_longest_class() {
        let stats = IoStats::from_graph(&graph_with_ops(), 1_000_000);
        // Reads: 2 × 50us = 100us; writes: 5 × ~1us = 5us.
        assert_eq!(stats.bottleneck().unwrap().0, "Read");
    }

    #[test]
    fn timeline_buckets() {
        let stats = IoStats::from_graph(&graph_with_ops(), 1_000_000);
        // Writes at t=0..5ms (one per ms bucket), reads both at 0.5ms.
        assert_eq!(stats.timeline[&0], 1 + 2);
        assert_eq!(stats.timeline[&1], 1);
        assert_eq!(stats.timeline.values().sum::<u64>(), 7);
    }

    #[test]
    fn empty_graph_is_empty_stats() {
        let stats = IoStats::from_graph(&Graph::new(), 1000);
        assert_eq!(stats.total_ops(), 0);
        assert!(stats.bottleneck().is_none());
    }

    #[test]
    fn table_renders() {
        let t = IoStats::from_graph(&graph_with_ops(), 1_000_000).to_table();
        assert!(t.contains("Write"));
        assert!(t.contains("Read"));
    }

    #[test]
    fn mean_duration() {
        let c = ClassStats {
            count: 4,
            total_duration_ns: 1000,
            total_bytes: 0,
        };
        assert_eq!(c.mean_duration_ns(), 250.0);
        assert_eq!(ClassStats::default().mean_duration_ns(), 0.0);
    }
}
