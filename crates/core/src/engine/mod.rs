//! The PROV-IO User Engine (paper §4.2, §6.5): query, statistics,
//! visualization.

pub mod query;
pub mod stats;
pub mod viz;

pub use query::ProvQueryEngine;
pub use stats::IoStats;
pub use viz::to_dot;
