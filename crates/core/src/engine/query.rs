//! Query interface: SPARQL endpoint plus canned provenance queries.
//!
//! The paper answers every provenance need with a few SPARQL statements
//! (Table 5). This engine embeds the `provio-sparql` evaluator and adds the
//! backward-lineage derivation DASSA's use case walks: a data product is
//! derived from every object its producing program read.

use provio_model::{ontology, ActivityClass, AgentClass, EntityClass, Guid, Relation};
use provio_rdf::{ns, Graph, Iri, Literal, Subject, Term, Triple};
use provio_sparql::{Query, QueryError, Solutions};
use std::collections::{HashMap, HashSet, VecDeque};

/// Query engine over a (merged) provenance graph.
pub struct ProvQueryEngine {
    graph: Graph,
    /// Step budget for each SPARQL evaluation; `u64::MAX` = unlimited.
    budget: u64,
}

impl ProvQueryEngine {
    pub fn new(graph: Graph) -> Self {
        ProvQueryEngine {
            graph,
            budget: u64::MAX,
        }
    }

    /// Cap each SPARQL evaluation at `budget` steps (the config knob
    /// `query_budget`); `0` means unlimited. A runaway join or a closure
    /// walk over a dense merged graph then fails with
    /// [`QueryError::BudgetExhausted`] instead of monopolizing the engine.
    pub fn with_budget(mut self, budget: u64) -> Self {
        self.budget = if budget == 0 { u64::MAX } else { budget };
        self
    }

    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Run a SPARQL SELECT query, subject to the engine's step budget.
    pub fn sparql(&self, query: &str) -> Result<Solutions, QueryError> {
        Query::parse(query)?.execute_with_budget(&self.graph, self.budget)
    }

    /// Find the entity whose `rdfs:label` is exactly `label`.
    pub fn entity_by_label(&self, label: &str) -> Option<Guid> {
        self.graph
            .subjects_with(
                &Iri::new(ns::RDFS_LABEL),
                &Term::Literal(Literal::plain(label)),
            )
            .into_iter()
            .find_map(|s| match s {
                Subject::Iri(i) => Guid::from_iri(&i),
                Subject::Blank(_) => None,
            })
    }

    /// Saturate the graph with `prov:wasDerivedFrom` edges between data
    /// objects: for every program, everything it wrote derives from
    /// everything it read (the inference behind the paper's backward
    /// lineage walk, §6.5).
    ///
    /// Returns the number of derivation edges added.
    pub fn derive_lineage(&mut self) -> usize {
        // program → (inputs, outputs)
        let mut io_by_program: HashMap<Guid, (HashSet<Guid>, HashSet<Guid>)> = HashMap::new();

        // Entities relate to activities via wasReadBy / wasWrittenBy /
        // wasCreatedBy …; activities relate to programs via
        // wasAssociatedWith.
        let assoc = Iri::new(Relation::WasAssociatedWith.iri());
        let mut program_of_activity: HashMap<Term, Guid> = HashMap::new();
        for t in self.graph.match_pattern(
            &provio_rdf::TriplePattern::any().with_predicate(assoc.clone()),
        ) {
            if let Some(g) = t.object.as_iri().and_then(Guid::from_iri) {
                program_of_activity.insert(Term::from(t.subject), g);
            }
        }

        let read_like = [Relation::WasReadBy, Relation::WasOpenedBy];
        let write_like = [
            Relation::WasWrittenBy,
            Relation::WasCreatedBy,
            Relation::WasFlushedBy,
            Relation::WasModifiedBy,
        ];
        for (rels, is_input) in [(&read_like[..], true), (&write_like[..], false)] {
            for rel in rels {
                let p = Iri::new(rel.iri());
                for t in self
                    .graph
                    .match_pattern(&provio_rdf::TriplePattern::any().with_predicate(p))
                {
                    let Some(entity) = t.subject.as_iri().and_then(Guid::from_iri) else {
                        continue;
                    };
                    let Some(program) = program_of_activity.get(&t.object) else {
                        continue;
                    };
                    let slot = io_by_program
                        .entry(program.clone())
                        .or_default();
                    if is_input {
                        slot.0.insert(entity);
                    } else {
                        slot.1.insert(entity);
                    }
                }
            }
        }

        let derived = Iri::new(Relation::WasDerivedFrom.iri());
        let mut added = 0;
        for (_program, (inputs, outputs)) in io_by_program {
            for out in &outputs {
                for inp in &inputs {
                    if out == inp {
                        continue;
                    }
                    let t = Triple::new(
                        out.to_subject(),
                        derived.clone(),
                        Term::Iri(inp.to_iri()),
                    );
                    if self.graph.insert(&t) {
                        added += 1;
                    }
                }
            }
        }
        added
    }

    /// Transitive backward lineage of an entity (BFS over
    /// `prov:wasDerivedFrom`), nearest first.
    pub fn backward_lineage(&self, entity: &Guid) -> Vec<Guid> {
        let derived = Iri::new(Relation::WasDerivedFrom.iri());
        let mut seen = HashSet::new();
        let mut queue = VecDeque::from([entity.clone()]);
        let mut out = Vec::new();
        while let Some(cur) = queue.pop_front() {
            for obj in self.graph.objects(&cur.to_subject(), &derived) {
                if let Some(g) = obj.as_iri().and_then(Guid::from_iri) {
                    if seen.insert(g.clone()) {
                        out.push(g.clone());
                        queue.push_back(g);
                    }
                }
            }
        }
        out
    }

    /// Provenance reduction (the database-style optimization the paper
    /// cites as applicable, §7): collapse all I/O-API activity nodes that
    /// are equivalent for lineage purposes — same API label, same
    /// associated agents, same set of (relation, data-object) edges — into
    /// one representative node carrying an occurrence count and summed
    /// duration/bytes. Lineage queries return identical answers on the
    /// reduced graph; per-invocation timelines are lost (by design).
    ///
    /// Returns (activities before, activities after).
    pub fn reduce_activities(&mut self) -> (usize, usize) {
        use provio_model::{ActivityClass, PropKey, PropValue};

        // Group activities by their lineage-equivalence signature.
        let mut groups: HashMap<String, Vec<Guid>> = HashMap::new();
        let mut incoming: HashMap<Guid, Vec<(Subject, Iri)>> = HashMap::new();
        for class in ActivityClass::ALL {
            for act in ontology::nodes_of_class(&self.graph, class.into()) {
                let node = match ontology::node_from_graph(&self.graph, &act) {
                    Some(n) => n,
                    None => continue,
                };
                let mut out_edges: Vec<String> = ontology::relations_from_graph(&self.graph, &act)
                    .into_iter()
                    .map(|(r, g)| format!("{}→{}", r.local_name(), g))
                    .collect();
                out_edges.sort();
                // Incoming edges (entity —wasReadBy→ activity etc.).
                let mut in_edges: Vec<String> = Vec::new();
                let mut in_raw: Vec<(Subject, Iri)> = Vec::new();
                for rel in Relation::ALL {
                    let p = Iri::new(rel.iri());
                    for s in self
                        .graph
                        .subjects_with(&p, &Term::Iri(act.to_iri()))
                    {
                        in_edges.push(format!("{}←{}", rel.local_name(), s));
                        in_raw.push((s, p.clone()));
                    }
                }
                in_edges.sort();
                incoming.insert(act.clone(), in_raw);
                let sig = format!(
                    "{}|{}|{}|{}",
                    class.local_name(),
                    node.label,
                    out_edges.join(";"),
                    in_edges.join(";")
                );
                groups.entry(sig).or_default().push(act);
            }
        }

        let before: usize = groups.values().map(Vec::len).sum();
        let mut after = 0usize;
        for (_, mut members) in groups {
            members.sort();
            after += 1;
            if members.len() < 2 {
                continue;
            }
            let keep = members[0].clone();
            // Aggregate numeric properties onto the representative.
            let mut count = 0i64;
            let mut total_ns = 0i64;
            let mut total_bytes = 0i64;
            for m in &members {
                if let Some(n) = ontology::node_from_graph(&self.graph, m) {
                    count += 1;
                    if let Some(PropValue::Int(v)) = n.prop(PropKey::ElapsedNs) {
                        total_ns += v;
                    }
                    if let Some(PropValue::Int(v)) = n.prop(PropKey::Bytes) {
                        total_bytes += v;
                    }
                }
            }
            // Drop the duplicates and their edges.
            for m in &members[1..] {
                let subject = m.to_subject();
                for t in self
                    .graph
                    .match_pattern(&provio_rdf::TriplePattern::any().with_subject(subject.clone()))
                {
                    self.graph.remove(&t);
                }
                if let Some(edges) = incoming.get(m) {
                    for (s, p) in edges {
                        self.graph.remove(&Triple::new(
                            s.clone(),
                            p.clone(),
                            Term::Iri(m.to_iri()),
                        ));
                        // Re-point at the representative (idempotent).
                        self.graph.insert(&Triple::new(
                            s.clone(),
                            p.clone(),
                            Term::Iri(keep.to_iri()),
                        ));
                    }
                }
            }
            // Replace the representative's per-invocation numbers with
            // aggregates.
            let subject = keep.to_subject();
            for key in [PropKey::ElapsedNs, PropKey::Bytes, PropKey::TimestampNs] {
                for t in self.graph.match_pattern(
                    &provio_rdf::TriplePattern::any()
                        .with_subject(subject.clone())
                        .with_predicate(Iri::new(key.iri())),
                ) {
                    self.graph.remove(&t);
                }
            }
            self.graph.insert(&Triple::new(
                subject.clone(),
                Iri::new(format!("{}occurrences", provio_rdf::ns::PROVIO)),
                Literal::integer(count),
            ));
            if total_ns > 0 {
                self.graph.insert(&Triple::new(
                    subject.clone(),
                    Iri::new(PropKey::ElapsedNs.iri()),
                    Literal::integer(total_ns),
                ));
            }
            if total_bytes > 0 {
                self.graph.insert(&Triple::new(
                    subject,
                    Iri::new(PropKey::Bytes.iri()),
                    Literal::integer(total_bytes),
                ));
            }
        }
        (before, after)
    }

    /// Transitive *forward* lineage: everything derived from `entity`
    /// (impact analysis — "which products must be regenerated if this
    /// input was bad?").
    pub fn forward_lineage(&self, entity: &Guid) -> Vec<Guid> {
        let derived = Iri::new(Relation::WasDerivedFrom.iri());
        let mut seen = HashSet::new();
        let mut queue = VecDeque::from([entity.clone()]);
        let mut out = Vec::new();
        while let Some(cur) = queue.pop_front() {
            for subj in self
                .graph
                .subjects_with(&derived, &Term::Iri(cur.to_iri()))
            {
                let Subject::Iri(i) = subj else { continue };
                if let Some(g) = Guid::from_iri(&i) {
                    if seen.insert(g.clone()) {
                        out.push(g.clone());
                        queue.push_back(g);
                    }
                }
            }
        }
        out
    }

    /// Programs an entity is attributed to (Table 5 q1).
    pub fn programs_of(&self, entity: &Guid) -> Vec<Guid> {
        self.related(entity, Relation::WasAttributedTo)
    }

    /// Threads a program acted on behalf of (Table 5 q8).
    pub fn threads_of(&self, program: &Guid) -> Vec<Guid> {
        self.related(program, Relation::ActedOnBehalfOf)
    }

    /// Users a thread acted on behalf of (Table 5 q9).
    pub fn users_of(&self, thread: &Guid) -> Vec<Guid> {
        self.related(thread, Relation::ActedOnBehalfOf)
    }

    fn related(&self, subject: &Guid, rel: Relation) -> Vec<Guid> {
        self.graph
            .objects(&subject.to_subject(), &Iri::new(rel.iri()))
            .into_iter()
            .filter_map(|t| t.as_iri().and_then(Guid::from_iri))
            .collect()
    }

    /// Node label.
    pub fn label_of(&self, id: &Guid) -> Option<String> {
        self.graph
            .objects(&id.to_subject(), &Iri::new(ns::RDFS_LABEL))
            .into_iter()
            .find_map(|t| t.as_literal().map(|l| l.lexical().to_string()))
    }

    /// The full chain for H5bench scenario 3: file → programs → threads →
    /// users, as labels.
    pub fn access_chain(&self, file_label: &str) -> Vec<(String, String, String)> {
        let Some(file) = self.entity_by_label(file_label) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for prog in self.programs_of(&file) {
            let p = self.label_of(&prog).unwrap_or_default();
            for th in self.threads_of(&prog) {
                let t = self.label_of(&th).unwrap_or_default();
                for u in self.users_of(&th) {
                    out.push((p.clone(), t.clone(), self.label_of(&u).unwrap_or_default()));
                }
            }
        }
        out.sort();
        out
    }

    /// Count of activity nodes per I/O API class (H5bench scenario 1).
    pub fn io_api_counts(&self) -> Vec<(ActivityClass, usize)> {
        ActivityClass::ALL
            .into_iter()
            .map(|c| {
                (
                    c,
                    ontology::nodes_of_class(&self.graph, c.into()).len(),
                )
            })
            .collect()
    }

    /// All entities of a class, with labels.
    pub fn entities(&self, class: EntityClass) -> Vec<(Guid, String)> {
        let mut v: Vec<(Guid, String)> = ontology::nodes_of_class(&self.graph, class.into())
            .into_iter()
            .map(|g| {
                let l = self.label_of(&g).unwrap_or_default();
                (g, l)
            })
            .collect();
        v.sort_by(|a, b| a.1.cmp(&b.1));
        v
    }

    /// All agents of a class, with labels.
    pub fn agents(&self, class: AgentClass) -> Vec<(Guid, String)> {
        let mut v: Vec<(Guid, String)> = ontology::nodes_of_class(&self.graph, class.into())
            .into_iter()
            .map(|g| {
                let l = self.label_of(&g).unwrap_or_default();
                (g, l)
            })
            .collect();
        v.sort_by(|a, b| a.1.cmp(&b.1));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provio_rdf::turtle;

    /// A hand-built DASSA-shaped provenance graph:
    /// WestSac.tdms --tdms2h5--> WestSac.h5 --decimate--> decimate.h5
    fn dassa_graph() -> Graph {
        let ttl = r#"
        @prefix prov: <http://www.w3.org/ns/prov#> .
        @prefix provio: <https://github.com/hpc-io/prov-io#> .
        @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .

        <urn:provio:agent/program/tdms2h5> a provio:Program ; rdfs:label "tdms2h5" ;
            prov:actedOnBehalfOf <urn:provio:agent/thread/t0> .
        <urn:provio:agent/program/decimate> a provio:Program ; rdfs:label "decimate" ;
            prov:actedOnBehalfOf <urn:provio:agent/thread/t0> .
        <urn:provio:agent/thread/t0> a provio:Thread ; rdfs:label "rank0" ;
            prov:actedOnBehalfOf <urn:provio:agent/user/UserA> .
        <urn:provio:agent/user/UserA> a provio:User ; rdfs:label "UserA" .

        <urn:provio:act/read-1> a provio:Read ; rdfs:label "read" ;
            prov:wasAssociatedWith <urn:provio:agent/program/tdms2h5> .
        <urn:provio:act/write-1> a provio:Write ; rdfs:label "write" ;
            prov:wasAssociatedWith <urn:provio:agent/program/tdms2h5> .
        <urn:provio:act/read-2> a provio:Read ; rdfs:label "H5Dread" ;
            prov:wasAssociatedWith <urn:provio:agent/program/decimate> .
        <urn:provio:act/write-2> a provio:Write ; rdfs:label "H5Dwrite" ;
            prov:wasAssociatedWith <urn:provio:agent/program/decimate> .

        <urn:provio:obj/file/WestSac.tdms> a provio:File ; rdfs:label "/WestSac.tdms" ;
            provio:wasReadBy <urn:provio:act/read-1> .
        <urn:provio:obj/file/WestSac.h5> a provio:File ; rdfs:label "/WestSac.h5" ;
            provio:wasWrittenBy <urn:provio:act/write-1> ;
            provio:wasReadBy <urn:provio:act/read-2> ;
            prov:wasAttributedTo <urn:provio:agent/program/tdms2h5> .
        <urn:provio:obj/file/decimate.h5> a provio:File ; rdfs:label "/decimate.h5" ;
            provio:wasWrittenBy <urn:provio:act/write-2> ;
            prov:wasAttributedTo <urn:provio:agent/program/decimate> .
        "#;
        turtle::parse(ttl).unwrap().0
    }

    #[test]
    fn lineage_derivation_and_backward_walk() {
        let mut eng = ProvQueryEngine::new(dassa_graph());
        let added = eng.derive_lineage();
        assert!(added >= 2, "added {added}");
        let product = eng.entity_by_label("/decimate.h5").unwrap();
        let lineage = eng.backward_lineage(&product);
        let labels: Vec<String> = lineage
            .iter()
            .map(|g| eng.label_of(g).unwrap())
            .collect();
        assert_eq!(labels, vec!["/WestSac.h5", "/WestSac.tdms"]);
    }

    #[test]
    fn derive_lineage_is_idempotent() {
        let mut eng = ProvQueryEngine::new(dassa_graph());
        let first = eng.derive_lineage();
        let second = eng.derive_lineage();
        assert!(first > 0);
        assert_eq!(second, 0);
    }

    #[test]
    fn table5_q1_attribution_query() {
        let eng = ProvQueryEngine::new(dassa_graph());
        let sols = eng
            .sparql(
                "SELECT ?program WHERE { \
                   <urn:provio:obj/file/decimate.h5> prov:wasAttributedTo ?program . }",
            )
            .unwrap();
        assert_eq!(sols.len(), 1);
        assert!(sols.rows[0]["program"].to_string().contains("decimate"));
    }

    #[test]
    fn table5_q7_to_q9_access_chain() {
        let eng = ProvQueryEngine::new(dassa_graph());
        let product = eng.entity_by_label("/decimate.h5").unwrap();
        let progs = eng.programs_of(&product);
        assert_eq!(progs.len(), 1);
        let threads = eng.threads_of(&progs[0]);
        assert_eq!(threads.len(), 1);
        let users = eng.users_of(&threads[0]);
        assert_eq!(eng.label_of(&users[0]).unwrap(), "UserA");

        let chain = eng.access_chain("/decimate.h5");
        assert_eq!(chain, vec![("decimate".into(), "rank0".into(), "UserA".into())]);
    }

    #[test]
    fn io_api_counts_by_class() {
        let eng = ProvQueryEngine::new(dassa_graph());
        let counts: HashMap<ActivityClass, usize> =
            eng.io_api_counts().into_iter().collect();
        assert_eq!(counts[&ActivityClass::Read], 2);
        assert_eq!(counts[&ActivityClass::Write], 2);
        assert_eq!(counts[&ActivityClass::Fsync], 0);
    }

    #[test]
    fn sparql_transitive_lineage_path_query() {
        let mut eng = ProvQueryEngine::new(dassa_graph());
        eng.derive_lineage();
        let sols = eng
            .sparql(
                "SELECT ?origin WHERE { \
                   <urn:provio:obj/file/decimate.h5> prov:wasDerivedFrom+ ?origin . }",
            )
            .unwrap();
        assert_eq!(sols.len(), 2);
    }

    #[test]
    fn entity_listing_sorted() {
        let eng = ProvQueryEngine::new(dassa_graph());
        let files = eng.entities(EntityClass::File);
        let labels: Vec<&str> = files.iter().map(|(_, l)| l.as_str()).collect();
        assert_eq!(labels, vec!["/WestSac.h5", "/WestSac.tdms", "/decimate.h5"]);
        let programs = eng.agents(AgentClass::Program);
        assert_eq!(programs.len(), 2);
    }

    #[test]
    fn reduction_preserves_lineage_answers() {
        // Build a graph where one program read the same file 50 times.
        let mut g = Graph::new();
        let ttl_head = r#"
            @prefix prov: <http://www.w3.org/ns/prov#> .
            @prefix provio: <https://github.com/hpc-io/prov-io#> .
            @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
            <urn:provio:agent/program/p> a provio:Program ; rdfs:label "p" .
            <urn:provio:obj/file/in> a provio:File ; rdfs:label "/in" .
            <urn:provio:obj/file/out> a provio:File ; rdfs:label "/out" ;
                prov:wasAttributedTo <urn:provio:agent/program/p> ;
                provio:wasWrittenBy <urn:provio:act/w-0> .
            <urn:provio:act/w-0> a provio:Write ; rdfs:label "write" ;
                prov:wasAssociatedWith <urn:provio:agent/program/p> .
        "#;
        provio_rdf::turtle::parse_into(ttl_head, &mut g).unwrap();
        for i in 0..50 {
            let frag = format!(
                "@prefix prov: <http://www.w3.org/ns/prov#> . \
                 @prefix provio: <https://github.com/hpc-io/prov-io#> . \
                 @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> . \
                 <urn:provio:act/r-{i}> a provio:Read ; rdfs:label \"read\" ; \
                   provio:elapsed {} ; \
                   prov:wasAssociatedWith <urn:provio:agent/program/p> . \
                 <urn:provio:obj/file/in> provio:wasReadBy <urn:provio:act/r-{i}> .",
                100 + i
            );
            provio_rdf::turtle::parse_into(&frag, &mut g).unwrap();
        }

        let mut eng = ProvQueryEngine::new(g);
        let before_len = eng.graph().len();
        let (before, after) = eng.reduce_activities();
        assert_eq!(before, 51, "50 reads + 1 write");
        assert_eq!(after, 2, "one representative per equivalence class");
        assert!(eng.graph().len() < before_len);

        // Lineage still derivable and identical.
        eng.derive_lineage();
        let out = eng.entity_by_label("/out").unwrap();
        let lineage = eng.backward_lineage(&out);
        assert_eq!(lineage.len(), 1);
        assert_eq!(eng.label_of(&lineage[0]).unwrap(), "/in");
        // The representative read carries the aggregate count + duration.
        let sols = eng
            .sparql(
                "SELECT ?n ?d WHERE { ?a a provio:Read ; \
                   provio:occurrences ?n ; provio:elapsed ?d . }",
            )
            .unwrap();
        assert_eq!(sols.len(), 1);
        assert_eq!(sols.rows[0]["n"].as_literal().unwrap().as_i64(), Some(50));
        let total: i64 = (0..50).map(|i| 100 + i).sum();
        assert_eq!(
            sols.rows[0]["d"].as_literal().unwrap().as_i64(),
            Some(total)
        );
    }

    #[test]
    fn reduction_is_idempotent() {
        let mut eng = ProvQueryEngine::new(dassa_graph());
        let (b1, a1) = eng.reduce_activities();
        let (b2, a2) = eng.reduce_activities();
        assert_eq!(a1, b2);
        assert_eq!(a2, b2, "second pass is a no-op");
        assert!(b1 >= a1);
    }

    #[test]
    fn forward_lineage_is_backward_inverted() {
        let mut eng = ProvQueryEngine::new(dassa_graph());
        eng.derive_lineage();
        let raw = eng.entity_by_label("/WestSac.tdms").unwrap();
        let forward = eng.forward_lineage(&raw);
        let labels: Vec<String> = forward.iter().map(|g| eng.label_of(g).unwrap()).collect();
        assert_eq!(labels, vec!["/WestSac.h5", "/decimate.h5"]);
        // Inversion property: everything forward of raw has raw in its
        // backward lineage.
        for g in &forward {
            assert!(eng.backward_lineage(g).contains(&raw));
        }
    }

    #[test]
    fn query_budget_knob_limits_evaluation() {
        let eng = ProvQueryEngine::new(dassa_graph()).with_budget(2);
        let err = eng
            .sparql("SELECT ?a ?p WHERE { ?a prov:wasAssociatedWith ?p . }")
            .unwrap_err();
        assert!(matches!(err, QueryError::BudgetExhausted { budget: 2 }));

        // 0 means unlimited (the `query_budget` ini default).
        let eng = ProvQueryEngine::new(dassa_graph()).with_budget(0);
        let sols = eng
            .sparql("SELECT ?a WHERE { ?a a provio:Read . }")
            .unwrap();
        assert_eq!(sols.len(), 2);
    }

    #[test]
    fn missing_label_lookup_is_none() {
        let eng = ProvQueryEngine::new(dassa_graph());
        assert!(eng.entity_by_label("/nope").is_none());
    }
}
