//! Property tests over the tracking pipeline: selector monotonicity
//! (enabling more sub-classes never loses provenance), store round-trip
//! fidelity, and merge invariance under event partitioning.

use proptest::prelude::*;
use provio::{merge_directory, IoEvent, ObjectDesc, ProvIoConfig, ProvTracker};
use provio_hpcfs::{FileSystem, LustreConfig};
use provio_model::{ActivityClass, ClassSelector, EntityClass};
use provio_rdf::Graph;
use provio_simrt::VirtualClock;
use std::sync::Arc;

#[derive(Debug, Clone)]
struct Ev {
    activity: u8,
    entity: u8,
    name: u8,
    bytes: u16,
}

fn arb_events() -> impl Strategy<Value = Vec<Ev>> {
    proptest::collection::vec(
        (0u8..6, 0u8..7, 0u8..8, any::<u16>()).prop_map(|(activity, entity, name, bytes)| Ev {
            activity,
            entity,
            name,
            bytes,
        }),
        1..40,
    )
}

fn to_event(e: &Ev, i: u64) -> IoEvent {
    let activity = ActivityClass::ALL[e.activity as usize];
    let entity = EntityClass::ALL[e.entity as usize];
    IoEvent {
        activity,
        api_name: format!("api_{}", activity.local_name()),
        object: Some(ObjectDesc::hdf5(
            entity,
            "/f.h5",
            format!("/obj{}", e.name),
        )),
        bytes: e.bytes as u64,
        duration_ns: 10,
        timestamp_ns: i,
        ok: true,
    }
}

fn run_events(events: &[Ev], selector: ClassSelector) -> (Graph, u64) {
    let fs = FileSystem::new(LustreConfig::default());
    let tracker = ProvTracker::new(
        ProvIoConfig::default()
            .with_selector(selector)
            .with_record_latency_ns(0)
            .shared(),
        Arc::clone(&fs),
        0,
        "u",
        "p",
        VirtualClock::new(),
    );
    for (i, e) in events.iter().enumerate() {
        tracker.track_io(&to_event(e, i as u64));
    }
    let summary = tracker.finish();
    let (graph, _) = merge_directory(&fs, "/provio");
    (graph, summary.events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// DASSA's nested presets: finer granularity ⇒ superset of events and
    /// at least as many triples.
    #[test]
    fn selector_granularity_is_monotone(events in arb_events()) {
        let (g_file, e_file) = run_events(&events, ClassSelector::dassa_file_lineage());
        let (g_ds, e_ds) = run_events(&events, ClassSelector::dassa_dataset_lineage());
        let (g_attr, e_attr) = run_events(&events, ClassSelector::dassa_attribute_lineage());
        prop_assert!(e_file <= e_ds);
        prop_assert!(e_ds <= e_attr);
        prop_assert!(g_file.len() <= g_ds.len());
        prop_assert!(g_ds.len() <= g_attr.len());
    }

    /// `all()` captures every event; `none()` captures none.
    #[test]
    fn all_and_none_bracket(events in arb_events()) {
        let (g_all, e_all) = run_events(&events, ClassSelector::all());
        let (g_none, e_none) = run_events(&events, ClassSelector::none());
        prop_assert_eq!(e_all, events.len() as u64);
        prop_assert_eq!(e_none, 0);
        prop_assert!(g_all.len() > 0);
        prop_assert_eq!(g_none.len(), 0);
    }

    /// Partitioning events across processes and merging yields the same
    /// entity/agent nodes as one process tracking everything (activities
    /// differ only in their per-process GUIDs).
    #[test]
    fn merge_invariant_under_partitioning(events in arb_events(), split in any::<prop::sample::Index>()) {
        use provio_model::ontology::nodes_of_class;

        let k = split.index(events.len());
        let fs = FileSystem::new(LustreConfig::default());
        for (pid, chunk) in [&events[..k], &events[k..]].iter().enumerate() {
            let t = ProvTracker::new(
                ProvIoConfig::default().with_record_latency_ns(0).shared(),
                Arc::clone(&fs),
                pid as u32,
                "u",
                "p",
                VirtualClock::new(),
            );
            for (i, e) in chunk.iter().enumerate() {
                t.track_io(&to_event(e, i as u64));
            }
            t.finish();
        }
        let (split_graph, _) = merge_directory(&fs, "/provio");

        let (single_graph, _) = run_events(&events, ClassSelector::all());

        for class in EntityClass::ALL {
            let a = nodes_of_class(&split_graph, class.into()).len();
            let b = nodes_of_class(&single_graph, class.into()).len();
            prop_assert_eq!(a, b, "entity class {:?}", class);
        }
        for class in ActivityClass::ALL {
            let a = nodes_of_class(&split_graph, class.into()).len();
            let b = nodes_of_class(&single_graph, class.into()).len();
            prop_assert_eq!(a, b, "activity class {:?}", class);
        }
    }

    /// The store round-trips exactly: what the tracker emitted is what the
    /// merged graph contains (Turtle serialize/parse is lossless for the
    /// tracker's output).
    #[test]
    fn store_round_trip_lossless(events in arb_events()) {
        let (graph, _) = run_events(&events, ClassSelector::all());
        let ttl = provio_rdf::turtle::serialize(&graph, &provio_rdf::Namespaces::standard());
        let (reparsed, _) = provio_rdf::turtle::parse(&ttl).unwrap();
        prop_assert_eq!(graph.len(), reparsed.len());
        for t in graph.iter() {
            prop_assert!(reparsed.contains(&t));
        }
    }
}
