//! `provio-provlake` — a process-oriented provenance baseline modeled on
//! IBM ProvLake, the system PROV-IO is compared against in §6.4.
//!
//! The paper characterizes ProvLake as *process-oriented*: "ProvLake creates
//! records based on the execution steps of a workflow, and the provenance
//! data are maintained as attribute or property of individual steps", and
//! observes that "ProvLake has to track more irrelevant workflow information
//! not needed in the use case". This baseline reproduces exactly those
//! structural properties:
//!
//! * capture is **per execution step** (workflow → tasks → cycles), driven
//!   by explicit API instrumentation — there is no transparent I/O capture
//!   and no sub-class selector;
//! * every step record carries its full context (workflow identity, the
//!   complete configuration attribute set, step metadata), so stored bytes
//!   grow with *steps × context*, not with the information actually asked
//!   for;
//! * records persist as JSON-lines on the parallel file system (standing in
//!   for ProvLake's HTTP push to a collector service).
//!
//! Like the PROV-IO tracker, all API calls charge their real measured time
//! to the workflow's virtual clock, so Figure 8's head-to-head comparison
//! measures two real implementations over the same workload.

pub mod characteristics;
pub mod tracker;

pub use characteristics::{framework_characteristics, FrameworkInfo, Transparency};
pub use tracker::{ProvLakeTracker, TaskHandle};
