//! Table 4: basic characteristics of the compared frameworks.

/// How a framework integrates with workflows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transparency {
    /// Users must instrument their source with APIs.
    No,
    /// I/O-library-integrated capture needs no source changes; extensible
    /// needs do (PROV-IO).
    Hybrid,
}

impl Transparency {
    pub fn as_str(self) -> &'static str {
        match self {
            Transparency::No => "No",
            Transparency::Hybrid => "Hybrid",
        }
    }
}

/// One row of the paper's Table 4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameworkInfo {
    pub name: &'static str,
    pub base_model: &'static str,
    pub languages: &'static [&'static str],
    pub transparency: Transparency,
}

/// The three frameworks compared in §6.4.
pub fn framework_characteristics() -> Vec<FrameworkInfo> {
    vec![
        FrameworkInfo {
            name: "Komadu",
            base_model: "PROV-DM",
            languages: &["Java"],
            transparency: Transparency::No,
        },
        FrameworkInfo {
            name: "ProvLake",
            base_model: "PROV-DM",
            languages: &["Python"],
            transparency: Transparency::No,
        },
        FrameworkInfo {
            name: "PROV-IO",
            base_model: "PROV-DM",
            languages: &["C/C++", "Python", "Java"],
            transparency: Transparency::Hybrid,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_shape() {
        let rows = framework_characteristics();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.base_model == "PROV-DM"));
        let provio = rows.iter().find(|r| r.name == "PROV-IO").unwrap();
        assert_eq!(provio.transparency, Transparency::Hybrid);
        assert_eq!(provio.languages.len(), 3);
        let provlake = rows.iter().find(|r| r.name == "ProvLake").unwrap();
        assert_eq!(provlake.transparency, Transparency::No);
        assert_eq!(provlake.languages, &["Python"]);
    }

    #[test]
    fn transparency_strings() {
        assert_eq!(Transparency::Hybrid.as_str(), "Hybrid");
        assert_eq!(Transparency::No.as_str(), "No");
    }
}
