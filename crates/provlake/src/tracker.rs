//! The process-oriented tracker.

use parking_lot::Mutex;
use provio_hpcfs::FileSystem;
use provio_simrt::{ChargeGuard, SimTime, VirtualClock};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

/// Handle to an in-flight task (execution step).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskHandle(u64);

#[derive(Debug)]
struct StepRecord<'a> {
    record_kind: &'a str,
    workflow: &'a str,
    workflow_instance: u64,
    /// The full workflow-level attribute set, duplicated into every step
    /// record — the "irrelevant workflow information" the paper calls out.
    workflow_attributes: &'a BTreeMap<String, String>,
    task: &'a str,
    task_id: u64,
    cycle: u64,
    started_at_ns: u64,
    ended_at_ns: u64,
    inputs: &'a BTreeMap<String, String>,
    outputs: &'a BTreeMap<String, String>,
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    out.push_str(&serde_json::escape_str(s));
    out.push('"');
}

fn push_json_map(out: &mut String, map: &BTreeMap<String, String>) {
    out.push('{');
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, k);
        out.push(':');
        push_json_str(out, v);
    }
    out.push('}');
}

impl StepRecord<'_> {
    /// One JSONL line, field order matching the struct declaration.
    fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"record_kind\":");
        push_json_str(&mut out, self.record_kind);
        out.push_str(",\"workflow\":");
        push_json_str(&mut out, self.workflow);
        let _ = write!(out, ",\"workflow_instance\":{}", self.workflow_instance);
        out.push_str(",\"workflow_attributes\":");
        push_json_map(&mut out, self.workflow_attributes);
        out.push_str(",\"task\":");
        push_json_str(&mut out, self.task);
        let _ = write!(
            out,
            ",\"task_id\":{},\"cycle\":{},\"started_at_ns\":{},\"ended_at_ns\":{}",
            self.task_id, self.cycle, self.started_at_ns, self.ended_at_ns
        );
        out.push_str(",\"inputs\":");
        push_json_map(&mut out, self.inputs);
        out.push_str(",\"outputs\":");
        push_json_map(&mut out, self.outputs);
        out.push('}');
        out
    }
}

#[derive(Debug)]
struct Task {
    name: String,
    id: u64,
    cycle: u64,
    started_at_ns: u64,
    inputs: BTreeMap<String, String>,
    outputs: BTreeMap<String, String>,
}

struct State {
    workflow_attributes: BTreeMap<String, String>,
    open_tasks: BTreeMap<u64, Task>,
    next_task: u64,
    lines: Vec<String>,
    records: u64,
}

/// Modeled latency of pushing one step record to the collector service
/// (ProvLake POSTs JSON over HTTP; PROV-IO's Redland-insert analog is
/// `provio_core::config::DEFAULT_RECORD_LATENCY_NS`).
pub const DEFAULT_PUSH_LATENCY_NS: u64 = 2_500_000;

/// Process-oriented provenance capture for one workflow execution.
pub struct ProvLakeTracker {
    fs: Arc<FileSystem>,
    path: String,
    workflow: String,
    instance: u64,
    clock: VirtualClock,
    push_latency_ns: u64,
    state: Mutex<State>,
}

impl ProvLakeTracker {
    /// Begin a workflow execution writing to `path`.
    pub fn new(
        fs: Arc<FileSystem>,
        path: impl Into<String>,
        workflow: impl Into<String>,
        instance: u64,
        clock: VirtualClock,
    ) -> Self {
        let path = path.into();
        if let Some((dir, _)) = path.rsplit_once('/') {
            if !dir.is_empty() {
                let _ = fs.mkdir_all(dir, "provlake", SimTime::ZERO);
            }
        }
        ProvLakeTracker {
            fs,
            path,
            workflow: workflow.into(),
            instance,
            clock,
            push_latency_ns: DEFAULT_PUSH_LATENCY_NS,
            state: Mutex::new(State {
                workflow_attributes: BTreeMap::new(),
                open_tasks: BTreeMap::new(),
                next_task: 1,
                lines: Vec::new(),
                records: 0,
            }),
        }
    }

    /// Record a workflow-level attribute (configuration). ProvLake attaches
    /// these "once at the beginning of the workflow" (paper §6.4) — but the
    /// full set rides along in every subsequent step record.
    pub fn set_workflow_attribute(&self, key: &str, value: &str) {
        let _g = ChargeGuard::new(&self.clock);
        // Attribute registration is a client-library call that round-trips
        // to the collector, like any other ProvLake API interaction.
        self.clock
            .advance(provio_simrt::SimDuration::from_nanos(self.push_latency_ns));
        self.state
            .lock()
            .workflow_attributes
            .insert(key.to_string(), value.to_string());
    }

    /// Begin an execution step (e.g. one training cycle).
    pub fn begin_task(&self, name: &str, cycle: u64) -> TaskHandle {
        let _g = ChargeGuard::new(&self.clock);
        let mut st = self.state.lock();
        let id = st.next_task;
        st.next_task += 1;
        st.open_tasks.insert(
            id,
            Task {
                name: name.to_string(),
                id,
                cycle,
                started_at_ns: self.clock.now().as_nanos(),
                inputs: BTreeMap::new(),
                outputs: BTreeMap::new(),
            },
        );
        TaskHandle(id)
    }

    /// Attach an input value to a step.
    pub fn task_input(&self, task: TaskHandle, key: &str, value: &str) {
        let _g = ChargeGuard::new(&self.clock);
        if let Some(t) = self.state.lock().open_tasks.get_mut(&task.0) {
            t.inputs.insert(key.to_string(), value.to_string());
        }
    }

    /// Attach an output value (e.g. the epoch's accuracy) to a step.
    pub fn task_output(&self, task: TaskHandle, key: &str, value: &str) {
        let _g = ChargeGuard::new(&self.clock);
        if let Some(t) = self.state.lock().open_tasks.get_mut(&task.0) {
            t.outputs.insert(key.to_string(), value.to_string());
        }
    }

    /// Override the modeled collector push latency (0 disables it).
    pub fn with_push_latency_ns(mut self, ns: u64) -> Self {
        self.push_latency_ns = ns;
        self
    }

    /// End a step: the full record (with duplicated workflow context) is
    /// serialized immediately, like ProvLake pushing to its collector.
    pub fn end_task(&self, task: TaskHandle) {
        let _g = ChargeGuard::new(&self.clock);
        self.clock.advance(provio_simrt::SimDuration::from_nanos(self.push_latency_ns));
        let mut st = self.state.lock();
        let Some(t) = st.open_tasks.remove(&task.0) else {
            return;
        };
        let record = StepRecord {
            record_kind: "task_execution",
            workflow: &self.workflow,
            workflow_instance: self.instance,
            workflow_attributes: &st.workflow_attributes,
            task: &t.name,
            task_id: t.id,
            cycle: t.cycle,
            started_at_ns: t.started_at_ns,
            ended_at_ns: self.clock.now().as_nanos(),
            inputs: &t.inputs,
            outputs: &t.outputs,
        };
        let line = record.to_json();
        st.lines.push(line);
        st.records += 1;
    }

    /// Number of step records so far.
    pub fn record_count(&self) -> u64 {
        self.state.lock().records
    }

    /// End the workflow: write all records and return stored bytes.
    pub fn finish(&self) -> u64 {
        let _g = ChargeGuard::new(&self.clock);
        let body = {
            let st = self.state.lock();
            let mut body = String::with_capacity(st.lines.iter().map(|l| l.len() + 1).sum());
            for l in &st.lines {
                body.push_str(l);
                body.push('\n');
            }
            body
        };
        let now = SimTime::ZERO;
        if let Ok(ino) = self.fs.create_file(&self.path, false, "provlake", now) {
            let _ = self.fs.truncate_ino(ino, 0, now);
            let _ = self.fs.write_at(ino, 0, body.as_bytes(), now);
        }
        body.len() as u64
    }

    pub fn path(&self) -> &str {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provio_hpcfs::LustreConfig;

    fn rig() -> (Arc<FileSystem>, ProvLakeTracker, VirtualClock) {
        let fs = FileSystem::new(LustreConfig::default());
        let clock = VirtualClock::new();
        let t = ProvLakeTracker::new(
            Arc::clone(&fs),
            "/provlake/topreco.jsonl",
            "topreco",
            1,
            clock.clone(),
        );
        (fs, t, clock)
    }

    #[test]
    fn step_records_written_as_jsonl() {
        let (fs, t, _) = rig();
        t.set_workflow_attribute("learning_rate", "0.01");
        let h = t.begin_task("train_epoch", 0);
        t.task_output(h, "accuracy", "0.81");
        t.end_task(h);
        let h = t.begin_task("train_epoch", 1);
        t.task_output(h, "accuracy", "0.85");
        t.end_task(h);
        let bytes = t.finish();
        assert!(bytes > 0);
        assert_eq!(t.record_count(), 2);

        let ino = fs.lookup("/provlake/topreco.jsonl").unwrap();
        let size = fs.stat("/provlake/topreco.jsonl").unwrap().size;
        let text = String::from_utf8(fs.read_at(ino, 0, size).unwrap().to_vec()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let rec: serde_json::Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(rec["workflow"], "topreco");
        assert_eq!(rec["cycle"], 1);
        assert_eq!(rec["outputs"]["accuracy"], "0.85");
        // Context duplication: workflow attributes present in EVERY record.
        for l in &lines {
            let v: serde_json::Value = serde_json::from_str(l).unwrap();
            assert_eq!(v["workflow_attributes"]["learning_rate"], "0.01");
        }
    }

    #[test]
    fn storage_grows_with_context_times_steps() {
        // More workflow attributes → bigger per-step records, even if the
        // steps never use them. This is the structural reason PROV-IO wins
        // Figure 8(d-f).
        let sizes: Vec<u64> = [20usize, 40, 80]
            .into_iter()
            .map(|nconfigs| {
                let (_, t, _) = rig();
                for i in 0..nconfigs {
                    t.set_workflow_attribute(&format!("hp_{i}"), "value");
                }
                for epoch in 0..10 {
                    let h = t.begin_task("train_epoch", epoch);
                    t.task_output(h, "accuracy", "0.9");
                    t.end_task(h);
                }
                t.finish()
            })
            .collect();
        assert!(sizes[1] > sizes[0]);
        assert!(sizes[2] > sizes[1]);
        // Roughly linear in the attribute count.
        let growth1 = sizes[1] - sizes[0];
        let growth2 = sizes[2] - sizes[1];
        assert!(growth2 > growth1, "context duplication compounds");
    }

    #[test]
    fn api_calls_charge_the_clock() {
        let (_, t, clock) = rig();
        let before = clock.now();
        for epoch in 0..100 {
            let h = t.begin_task("train_epoch", epoch);
            t.task_output(h, "accuracy", "0.5");
            t.end_task(h);
        }
        assert!(clock.now() > before);
    }

    #[test]
    fn unknown_task_handle_ignored() {
        let (_, t, _) = rig();
        t.task_output(TaskHandle(999), "k", "v");
        t.end_task(TaskHandle(999));
        assert_eq!(t.record_count(), 0);
    }

    #[test]
    fn finish_is_idempotent() {
        let (_, t, _) = rig();
        let h = t.begin_task("x", 0);
        t.end_task(h);
        assert_eq!(t.finish(), t.finish());
    }
}
