//! Triples and triple patterns.

use crate::term::{Iri, Subject, Term};
use std::fmt;

/// An RDF triple.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    pub subject: Subject,
    pub predicate: Iri,
    pub object: Term,
}

impl Triple {
    pub fn new(
        subject: impl Into<Subject>,
        predicate: impl Into<Iri>,
        object: impl Into<Term>,
    ) -> Self {
        Triple {
            subject: subject.into(),
            predicate: predicate.into(),
            object: object.into(),
        }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.subject, self.predicate, self.object)
    }
}

/// A triple pattern: `None` positions are wildcards.
#[derive(Debug, Clone, Default)]
pub struct TriplePattern {
    pub subject: Option<Subject>,
    pub predicate: Option<Iri>,
    pub object: Option<Term>,
}

impl TriplePattern {
    /// The all-wildcard pattern.
    pub fn any() -> Self {
        TriplePattern::default()
    }

    pub fn with_subject(mut self, s: impl Into<Subject>) -> Self {
        self.subject = Some(s.into());
        self
    }

    pub fn with_predicate(mut self, p: impl Into<Iri>) -> Self {
        self.predicate = Some(p.into());
        self
    }

    pub fn with_object(mut self, o: impl Into<Term>) -> Self {
        self.object = Some(o.into());
        self
    }

    /// Does `t` match this pattern?
    pub fn matches(&self, t: &Triple) -> bool {
        self.subject.as_ref().is_none_or(|s| *s == t.subject)
            && self.predicate.as_ref().is_none_or(|p| *p == t.predicate)
            && self.object.as_ref().is_none_or(|o| *o == t.object)
    }

    /// Number of bound positions (used by the query planner to order joins).
    pub fn bound_count(&self) -> usize {
        self.subject.is_some() as usize
            + self.predicate.is_some() as usize
            + self.object.is_some() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Literal;

    fn t() -> Triple {
        Triple::new(
            Subject::iri("urn:s"),
            Iri::new("urn:p"),
            Term::Literal(Literal::plain("o")),
        )
    }

    #[test]
    fn display_is_ntriples_shaped() {
        assert_eq!(t().to_string(), "<urn:s> <urn:p> \"o\" .");
    }

    #[test]
    fn any_matches_everything() {
        assert!(TriplePattern::any().matches(&t()));
    }

    #[test]
    fn bound_positions_filter() {
        let p = TriplePattern::any().with_subject(Subject::iri("urn:s"));
        assert!(p.matches(&t()));
        let p = TriplePattern::any().with_subject(Subject::iri("urn:other"));
        assert!(!p.matches(&t()));
        let p = TriplePattern::any()
            .with_predicate(Iri::new("urn:p"))
            .with_object(Term::plain("o"));
        assert!(p.matches(&t()));
        assert_eq!(p.bound_count(), 2);
    }
}
