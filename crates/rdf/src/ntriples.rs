//! N-Triples serialization and parsing (one triple per line, no prefixes).
//!
//! Redland supports several on-disk formats; PROV-IO's prototype uses Turtle
//! but the store is format-pluggable (§5), so we provide N-Triples as the
//! second format and use it for line-oriented streaming in tests.

use crate::term::{
    escape_literal, unescape_literal, BlankNode, Iri, Literal, Subject, Term,
};
use crate::triple::Triple;
use crate::{Graph, ParseError};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Serialize `graph` as N-Triples. Lines are sorted for determinism.
pub fn serialize(graph: &Graph) -> String {
    let mut out = Vec::new();
    serialize_to(graph, &mut out).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("N-Triples output is UTF-8")
}

/// Serialize `graph` as sorted N-Triples into any [`std::io::Write`] sink.
///
/// Each distinct term is rendered exactly once through a `TermId`-indexed
/// string cache, then lines are assembled from cached spellings — the write
/// path never materializes owned `Triple`s.
pub fn serialize_to<W: std::io::Write>(
    graph: &Graph,
    out: &mut W,
) -> std::io::Result<()> {
    for line in sorted_lines(graph.ids_from(0), |id| graph.term_raw(id)) {
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
    }
    Ok(())
}

/// Render a slice of id-triples as sorted N-Triples lines, resolving each
/// distinct id through `term_of` exactly once. This is the delta-segment
/// serializer: the store captures an id slice (plus the terms behind it)
/// under its state lock and renders here off-lock.
pub fn render_ids<'a, W: std::io::Write>(
    ids: &[(u32, u32, u32)],
    term_of: impl Fn(u32) -> &'a Term,
    out: &mut W,
) -> std::io::Result<()> {
    for line in sorted_lines(ids, term_of) {
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
    }
    Ok(())
}

/// The sorted N-Triples lines of the whole graph, without trailing
/// newlines: joining them with `'\n'` (plus a final one) reproduces
/// [`serialize`] byte for byte. The store's checksummed write path frames
/// these batch-by-batch while they are still cache-hot instead of
/// re-scanning a rendered megabyte blob.
pub fn sorted_graph_lines(graph: &Graph) -> Vec<String> {
    sorted_lines(graph.ids_from(0), |id| graph.term_raw(id))
}

/// The delta-segment variant of [`sorted_graph_lines`]: sorted lines for an
/// id slice resolved through `term_of`.
pub fn sorted_id_lines<'a>(
    ids: &[(u32, u32, u32)],
    term_of: impl Fn(u32) -> &'a Term,
) -> Vec<String> {
    sorted_lines(ids, term_of)
}

/// Insertion-ordered N-Triples records for an id slice, rendered into one
/// newline-terminated block. This is the write-ahead journal's record
/// format: a record's position *is* its ordinal, so unlike
/// [`sorted_id_lines`] the lines must not be reordered — and the journal
/// sits on the track path, so the whole batch is one allocation rather
/// than one `String` per record.
pub fn id_block<'a>(
    ids: &[(u32, u32, u32)],
    term_of: impl Fn(u32) -> &'a Term,
) -> String {
    let mut cache: HashMap<u32, String> = HashMap::new();
    for &(s, p, o) in ids {
        for id in [s, p, o] {
            cache
                .entry(id)
                .or_insert_with(|| render_term(term_of(id)));
        }
    }
    let cap = ids
        .iter()
        .map(|&(s, p, o)| cache[&s].len() + cache[&p].len() + cache[&o].len() + 5)
        .sum();
    let mut block = String::with_capacity(cap);
    for &(s, p, o) in ids {
        block.push_str(&cache[&s]);
        block.push(' ');
        block.push_str(&cache[&p]);
        block.push(' ');
        block.push_str(&cache[&o]);
        block.push_str(" .\n");
    }
    block
}

fn sorted_lines<'a>(
    ids: &[(u32, u32, u32)],
    term_of: impl Fn(u32) -> &'a Term,
) -> Vec<String> {
    let mut lines = render_lines(ids, term_of);
    lines.sort_unstable();
    lines
}

fn render_lines<'a>(
    ids: &[(u32, u32, u32)],
    term_of: impl Fn(u32) -> &'a Term,
) -> Vec<String> {
    let mut cache: HashMap<u32, String> = HashMap::new();
    for &(s, p, o) in ids {
        for id in [s, p, o] {
            cache
                .entry(id)
                .or_insert_with(|| render_term(term_of(id)));
        }
    }
    ids.iter()
        .map(|&(s, p, o)| {
            let (s, p, o) = (&cache[&s], &cache[&p], &cache[&o]);
            let mut l = String::with_capacity(s.len() + p.len() + o.len() + 4);
            l.push_str(s);
            l.push(' ');
            l.push_str(p);
            l.push(' ');
            l.push_str(o);
            l.push_str(" .");
            l
        })
        .collect()
}

/// Write one triple as a single N-Triples line.
pub fn write_triple<W: std::io::Write>(
    out: &mut W,
    t: &Triple,
) -> std::io::Result<()> {
    writeln!(
        out,
        "{} {} {} .",
        subject_str(&t.subject),
        t.predicate,
        render_term(&t.object)
    )
}

fn subject_str(s: &Subject) -> String {
    match s {
        Subject::Iri(i) => i.to_string(),
        Subject::Blank(b) => b.to_string(),
    }
}

/// Render a term's N-Triples spelling (any position: N-Triples spells a
/// term identically as subject, predicate, or object).
pub fn render_term(t: &Term) -> String {
    match t {
        Term::Iri(i) => i.to_string(),
        Term::Blank(b) => b.to_string(),
        Term::Literal(l) => {
            let mut s = format!("\"{}\"", escape_literal(l.lexical()));
            if let Some(dt) = l.datatype() {
                let _ = write!(s, "^^{dt}");
            } else if let Some(lang) = l.lang() {
                let _ = write!(s, "@{lang}");
            }
            s
        }
    }
}

/// Parse an N-Triples document into a new graph.
pub fn parse(src: &str) -> Result<Graph, ParseError> {
    let mut g = Graph::new();
    parse_into(src, &mut g)?;
    Ok(g)
}

/// Parse the longest valid prefix of a (possibly torn) N-Triples document
/// into `graph`, returning how many triples were recovered. Parsing stops
/// at the first malformed line, so a torn tail can only drop data, never
/// contribute garbage — the salvage primitive used by the post-run merge.
pub fn parse_lenient_prefix(src: &str, graph: &mut Graph) -> usize {
    let mut recovered = 0;
    for (lineno, line) in src.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_line(line, lineno + 1) {
            Ok(t) => {
                graph.insert(&t);
                recovered += 1;
            }
            Err(_) => break,
        }
    }
    recovered
}

/// Parse an N-Triples document, merging into `graph`.
pub fn parse_into(src: &str, graph: &mut Graph) -> Result<(), ParseError> {
    for (lineno, line) in src.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let triple = parse_line(line, lineno)?;
        graph.insert(&triple);
    }
    Ok(())
}

fn parse_line(line: &str, lineno: usize) -> Result<Triple, ParseError> {
    let err = |m: &str| ParseError::new(lineno, m);
    let mut rest = line;

    let (subject, r) = parse_subject(rest, lineno)?;
    rest = r.trim_start();

    let (predicate, r) = parse_iri(rest).ok_or_else(|| err("expected predicate IRI"))?;
    rest = r.trim_start();

    let (object, r) = parse_term(rest, lineno)?;
    rest = r.trim_start();

    if rest != "." {
        return Err(err("expected terminating '.'"));
    }
    Ok(Triple {
        subject,
        predicate,
        object,
    })
}

fn parse_iri(s: &str) -> Option<(Iri, &str)> {
    let rest = s.strip_prefix('<')?;
    let end = rest.find('>')?;
    Some((Iri::new(&rest[..end]), &rest[end + 1..]))
}

fn parse_blank(s: &str) -> Option<(BlankNode, &str)> {
    let rest = s.strip_prefix("_:")?;
    let end = rest
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '-'))
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    Some((BlankNode::new(&rest[..end]), &rest[end..]))
}

fn parse_subject(s: &str, lineno: usize) -> Result<(Subject, &str), ParseError> {
    if let Some((iri, rest)) = parse_iri(s) {
        return Ok((Subject::Iri(iri), rest));
    }
    if let Some((b, rest)) = parse_blank(s) {
        return Ok((Subject::Blank(b), rest));
    }
    Err(ParseError::new(lineno, "expected subject"))
}

fn parse_term(s: &str, lineno: usize) -> Result<(Term, &str), ParseError> {
    let err = |m: &str| ParseError::new(lineno, m);
    if let Some((iri, rest)) = parse_iri(s) {
        return Ok((Term::Iri(iri), rest));
    }
    if let Some((b, rest)) = parse_blank(s) {
        return Ok((Term::Blank(b), rest));
    }
    let Some(rest) = s.strip_prefix('"') else {
        return Err(err("expected object term"));
    };
    // Find the closing unescaped quote.
    let mut end = None;
    let bytes = rest.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => {
                end = Some(i);
                break;
            }
            _ => i += 1,
        }
    }
    let end = end.ok_or_else(|| err("unterminated literal"))?;
    let body =
        unescape_literal(&rest[..end]).ok_or_else(|| err("bad escape in literal"))?;
    let after = &rest[end + 1..];
    if let Some(after_dt) = after.strip_prefix("^^") {
        let (dt, r) = parse_iri(after_dt).ok_or_else(|| err("expected datatype IRI"))?;
        return Ok((Term::Literal(Literal::typed(body, dt)), r));
    }
    if let Some(after_lang) = after.strip_prefix('@') {
        let end = after_lang
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '-'))
            .unwrap_or(after_lang.len());
        if end == 0 {
            return Err(err("empty language tag"));
        }
        return Ok((
            Term::Literal(Literal::lang_tagged(body, &after_lang[..end])),
            &after_lang[end..],
        ));
    }
    Ok((Term::Literal(Literal::plain(body)), after))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::namespace::ns;

    fn sample() -> Graph {
        let mut g = Graph::new();
        g.insert(&Triple::new(
            Subject::iri("urn:s"),
            Iri::new(ns::RDF_TYPE),
            Term::iri(format!("{}File", ns::PROVIO)),
        ));
        g.insert(&Triple::new(
            Subject::iri("urn:s"),
            Iri::new(ns::RDFS_LABEL),
            Literal::plain("WestSac.h5"),
        ));
        g.insert(&Triple::new(
            BlankNode::new("b7"),
            Iri::new("urn:elapsed"),
            Literal::double(1.25),
        ));
        g.insert(&Triple::new(
            Subject::iri("urn:s"),
            Iri::new("urn:note"),
            Literal::lang_tagged("fichier", "fr"),
        ));
        g
    }

    #[test]
    fn round_trip() {
        let g = sample();
        let nt = serialize(&g);
        let g2 = parse(&nt).unwrap();
        assert_eq!(g.len(), g2.len());
        for t in g.iter() {
            assert!(g2.contains(&t), "missing {t}");
        }
    }

    #[test]
    fn serialization_sorted_and_line_per_triple() {
        let nt = serialize(&sample());
        let lines: Vec<&str> = nt.lines().collect();
        assert_eq!(lines.len(), 4);
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted);
        assert!(lines.iter().all(|l| l.ends_with(" .")));
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let src = "\n# comment\n<urn:a> <urn:p> <urn:b> .\n\n";
        assert_eq!(parse(src).unwrap().len(), 1);
    }

    #[test]
    fn escaped_quote_inside_literal() {
        let src = r#"<urn:a> <urn:p> "say \"hi\"" ."#;
        let g = parse(src).unwrap();
        let objs = g.objects(&Subject::iri("urn:a"), &Iri::new("urn:p"));
        assert_eq!(objs[0].as_literal().unwrap().lexical(), "say \"hi\"");
    }

    #[test]
    fn rejects_missing_dot() {
        assert!(parse("<urn:a> <urn:p> <urn:b>").is_err());
    }

    #[test]
    fn lenient_prefix_stops_at_torn_line() {
        let src = "<urn:a> <urn:p> <urn:b> .\n<urn:c> <urn:p> <urn:d> .\n<urn:e> <urn:p> \"tor";
        let mut g = Graph::new();
        assert_eq!(parse_lenient_prefix(src, &mut g), 2);
        assert_eq!(g.len(), 2);
        assert!(g.contains(&Triple::new(
            Subject::iri("urn:c"),
            Iri::new("urn:p"),
            Term::iri("urn:d"),
        )));
    }

    #[test]
    fn lenient_prefix_of_valid_doc_recovers_everything() {
        let nt = serialize(&sample());
        let mut g = Graph::new();
        assert_eq!(parse_lenient_prefix(&nt, &mut g), 4);
        assert_eq!(g.len(), sample().len());
    }

    #[test]
    fn rejects_garbage_after_dot_content() {
        assert!(parse("<urn:a> <urn:p> <urn:b> . extra").is_err());
    }

    #[test]
    fn parses_typed_and_lang_literals() {
        let src = concat!(
            "<urn:a> <urn:n> \"5\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n",
            "<urn:a> <urn:l> \"hi\"@en-GB .\n",
        );
        let g = parse(src).unwrap();
        assert_eq!(g.len(), 2);
        let n = g.objects(&Subject::iri("urn:a"), &Iri::new("urn:n"));
        assert_eq!(n[0].as_literal().unwrap().as_i64(), Some(5));
        let l = g.objects(&Subject::iri("urn:a"), &Iri::new("urn:l"));
        assert_eq!(l[0].as_literal().unwrap().lang(), Some("en-GB"));
    }
}
