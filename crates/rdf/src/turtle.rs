//! Turtle (Terse RDF Triple Language) serialization and parsing.
//!
//! The paper's prototype persists provenance "in the Turtle format directly
//! for simplicity" (§5). Our serializer produces deterministic, subject-
//! grouped documents (`s p1 o1 ; p2 o2a , o2b .`) with prefix compaction and
//! `a` for `rdf:type`; the parser accepts everything the serializer emits
//! plus the common Turtle forms used in hand-written fixtures (`@prefix`,
//! comments, bare numeric/boolean literals). Blank property lists `[...]`
//! and collections `(...)` are not supported — PROV-IO never produces them.

use crate::namespace::{ns, Namespaces};
use crate::term::{
    escape_literal, unescape_literal, BlankNode, Iri, Literal, Subject, Term,
};
use crate::triple::Triple;
use crate::{Graph, ParseError};
use std::collections::HashMap;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// Serializer
// ---------------------------------------------------------------------------

/// Serialize `graph` as Turtle using `nss` for prefix compaction.
///
/// Output is deterministic: prefixes, subjects, predicates and objects are
/// each emitted in sorted order, so identical graphs always serialize to
/// identical bytes (important for provenance-size measurements).
///
/// The serializer works at the id level: grouping and sorting walk the
/// graph's SPO index directly, and every distinct term is rendered to its
/// Turtle spelling exactly once per call through a `TermId`-indexed string
/// cache — no owned `Subject`/`Term` clones, no per-predicate re-sorting of
/// materialized object vectors.
pub fn serialize(graph: &Graph, nss: &Namespaces) -> String {
    let mut out = String::new();
    for (prefix, iri) in nss.iter() {
        let _ = writeln!(out, "@prefix {prefix}: <{iri}> .");
    }
    if !nss.is_empty() {
        out.push('\n');
    }

    let spo = graph.spo_index();
    // Subjects sorted by term order (matches the old Subject-keyed BTreeMap
    // ordering: IRIs before blanks, each lexicographic).
    let mut subject_ids: Vec<u32> = spo.keys().copied().collect();
    subject_ids.sort_unstable_by(|&a, &b| graph.term_raw(a).cmp(graph.term_raw(b)));

    // Rendered spellings, one per distinct term id per call.
    let mut terms: HashMap<u32, String> = HashMap::new();
    let mut preds: HashMap<u32, String> = HashMap::new();

    for &s in &subject_ids {
        let mut pairs: Vec<(u32, u32)> = spo[&s].clone();
        // (predicate, object) in term order, again matching the legacy
        // BTreeMap<Iri, Vec<Term>> + sort() output byte for byte.
        pairs.sort_unstable_by(|&(p1, o1), &(p2, o2)| {
            graph
                .term_raw(p1)
                .cmp(graph.term_raw(p2))
                .then_with(|| graph.term_raw(o1).cmp(graph.term_raw(o2)))
        });

        let subject = terms
            .entry(s)
            .or_insert_with(|| subject_term_str(graph.term_raw(s), nss))
            .clone();
        let _ = write!(out, "{subject}");

        let mut i = 0;
        let mut first_pred = true;
        while i < pairs.len() {
            let p = pairs[i].0;
            let mut j = i;
            while j < pairs.len() && pairs[j].0 == p {
                j += 1;
            }
            preds.entry(p).or_insert_with(|| match graph.term_raw(p) {
                Term::Iri(iri) => pred_str(iri, nss),
                other => subject_term_str(other, nss),
            });
            for &(_, o) in &pairs[i..j] {
                terms
                    .entry(o)
                    .or_insert_with(|| term_str(graph.term_raw(o), nss));
            }
            let rendered: Vec<&str> = pairs[i..j]
                .iter()
                .map(|&(_, o)| terms[&o].as_str())
                .collect();
            let sep = if j == pairs.len() { " ." } else { " ;" };
            if first_pred {
                let _ = writeln!(out, " {} {}{sep}", preds[&p], rendered.join(" , "));
            } else {
                let _ = writeln!(out, "    {} {}{sep}", preds[&p], rendered.join(" , "));
            }
            first_pred = false;
            i = j;
        }
    }
    out
}

/// Render a term occupying the subject position (IRI or blank).
fn subject_term_str(t: &Term, nss: &Namespaces) -> String {
    match t {
        Term::Iri(i) => iri_str(i, nss),
        Term::Blank(b) => format!("_:{}", b.label()),
        Term::Literal(_) => unreachable!("literal in subject position"),
    }
}

fn pred_str(p: &Iri, nss: &Namespaces) -> String {
    if p.as_str() == ns::RDF_TYPE {
        "a".to_string()
    } else {
        iri_str(p, nss)
    }
}

fn iri_str(i: &Iri, nss: &Namespaces) -> String {
    nss.compact(i.as_str())
        .unwrap_or_else(|| format!("<{}>", i.as_str()))
}

fn term_str(t: &Term, nss: &Namespaces) -> String {
    match t {
        Term::Iri(i) => iri_str(i, nss),
        Term::Blank(b) => format!("_:{}", b.label()),
        Term::Literal(l) => {
            let mut s = format!("\"{}\"", escape_literal(l.lexical()));
            if let Some(dt) = l.datatype() {
                s.push_str("^^");
                s.push_str(&iri_str(dt, nss));
            } else if let Some(lang) = l.lang() {
                s.push('@');
                s.push_str(lang);
            }
            s
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Iri(String),
    PName(String),   // prefix:local (including bare "p:")
    Blank(String),   // _:label
    Str(String),     // unescaped literal body
    LangTag(String), // @lang
    Number(String),
    Bool(bool),
    A,
    PrefixDecl, // @prefix or PREFIX
    DoubleCaret,
    Semi,
    Comma,
    Dot,
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.line, msg)
    }

    fn peek_byte(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek_byte()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.peek_byte() {
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'#' => {
                    while let Some(b) = self.peek_byte() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn next_tok(&mut self) -> Result<Tok, ParseError> {
        self.skip_ws();
        let Some(b) = self.peek_byte() else {
            return Ok(Tok::Eof);
        };
        match b {
            b'<' => {
                self.bump();
                let start = self.pos;
                while let Some(b) = self.peek_byte() {
                    if b == b'>' {
                        let iri = std::str::from_utf8(&self.src[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8 in IRI"))?
                            .to_string();
                        self.bump();
                        return Ok(Tok::Iri(iri));
                    }
                    self.bump();
                }
                Err(self.err("unterminated IRI"))
            }
            b'"' => {
                self.bump();
                let mut raw = String::new();
                loop {
                    match self.bump() {
                        None => return Err(self.err("unterminated string literal")),
                        Some(b'"') => break,
                        Some(b'\\') => {
                            raw.push('\\');
                            match self.bump() {
                                None => return Err(self.err("unterminated escape")),
                                Some(c) => raw.push(c as char),
                            }
                        }
                        Some(c) => {
                            // Collect raw bytes; re-validate as UTF-8 below.
                            raw.push(c as char);
                        }
                    }
                }
                // `raw` was built byte-by-byte; rebuild multi-byte UTF-8.
                let bytes: Vec<u8> = raw.chars().map(|c| c as u32 as u8).collect();
                let s = String::from_utf8(bytes)
                    .map_err(|_| self.err("invalid UTF-8 in literal"))?;
                let unescaped =
                    unescape_literal(&s).ok_or_else(|| self.err("bad escape sequence"))?;
                Ok(Tok::Str(unescaped))
            }
            b'_' => {
                self.bump();
                if self.bump() != Some(b':') {
                    return Err(self.err("expected ':' after '_'"));
                }
                let start = self.pos;
                while let Some(b) = self.peek_byte() {
                    if b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.' {
                        self.bump();
                    } else {
                        break;
                    }
                }
                let label = std::str::from_utf8(&self.src[start..self.pos])
                    .unwrap()
                    .trim_end_matches('.')
                    .to_string();
                // If we consumed a trailing '.', give it back as the
                // statement terminator.
                while self.src[..self.pos].ends_with(b".") && self.pos > start {
                    self.pos -= 1;
                }
                if label.is_empty() {
                    return Err(self.err("empty blank node label"));
                }
                Ok(Tok::Blank(label))
            }
            b'@' => {
                self.bump();
                let start = self.pos;
                while let Some(b) = self.peek_byte() {
                    if b.is_ascii_alphanumeric() || b == b'-' {
                        self.bump();
                    } else {
                        break;
                    }
                }
                let word = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                if word == "prefix" {
                    Ok(Tok::PrefixDecl)
                } else if word.is_empty() {
                    Err(self.err("empty language tag"))
                } else {
                    Ok(Tok::LangTag(word.to_string()))
                }
            }
            b'^' => {
                self.bump();
                if self.bump() != Some(b'^') {
                    return Err(self.err("expected '^^'"));
                }
                Ok(Tok::DoubleCaret)
            }
            b';' => {
                self.bump();
                Ok(Tok::Semi)
            }
            b',' => {
                self.bump();
                Ok(Tok::Comma)
            }
            b'.' => {
                self.bump();
                Ok(Tok::Dot)
            }
            b'+' | b'-' | b'0'..=b'9' => {
                let start = self.pos;
                self.bump();
                while let Some(b) = self.peek_byte() {
                    if b.is_ascii_digit()
                        || b == b'e'
                        || b == b'E'
                        || b == b'+'
                        || b == b'-'
                        || (b == b'.'
                            && self
                                .src
                                .get(self.pos + 1)
                                .is_some_and(|c| c.is_ascii_digit()))
                    {
                        self.bump();
                    } else {
                        break;
                    }
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
                Ok(Tok::Number(text.to_string()))
            }
            _ => {
                // PNAME, `a`, `true`/`false`, or SPARQL-style PREFIX.
                let start = self.pos;
                while let Some(b) = self.peek_byte() {
                    if b.is_ascii_alphanumeric()
                        || b == b'_'
                        || b == b'-'
                        || b == b':'
                        || b == b'%'
                        || (b == b'.'
                            && self.src.get(self.pos + 1).is_some_and(|&c| {
                                c.is_ascii_alphanumeric() || c == b'_' || c == b'-'
                            }))
                    {
                        self.bump();
                    } else {
                        break;
                    }
                }
                if self.pos == start {
                    return Err(self.err(format!("unexpected character '{}'", b as char)));
                }
                let word = std::str::from_utf8(&self.src[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?;
                match word {
                    "a" => Ok(Tok::A),
                    "true" => Ok(Tok::Bool(true)),
                    "false" => Ok(Tok::Bool(false)),
                    w if w.eq_ignore_ascii_case("prefix") => Ok(Tok::PrefixDecl),
                    w if w.contains(':') => Ok(Tok::PName(w.to_string())),
                    w => Err(self.err(format!("unexpected token '{w}'"))),
                }
            }
        }
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    peeked: Option<Tok>,
    nss: Namespaces,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            lexer: Lexer::new(src),
            peeked: None,
            nss: Namespaces::empty(),
        }
    }

    fn next(&mut self) -> Result<Tok, ParseError> {
        match self.peeked.take() {
            Some(t) => Ok(t),
            None => self.lexer.next_tok(),
        }
    }

    fn peek(&mut self) -> Result<&Tok, ParseError> {
        if self.peeked.is_none() {
            self.peeked = Some(self.lexer.next_tok()?);
        }
        Ok(self.peeked.as_ref().unwrap())
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.lexer.line, msg)
    }

    fn resolve_pname(&self, pname: &str) -> Result<Iri, ParseError> {
        self.nss
            .expand(pname)
            .ok_or_else(|| self.err(format!("unknown prefix in '{pname}'")))
    }

    fn parse_document(&mut self, graph: &mut Graph) -> Result<(), ParseError> {
        loop {
            match self.peek()? {
                Tok::Eof => return Ok(()),
                Tok::PrefixDecl => {
                    self.next()?;
                    let Tok::PName(pname) = self.next()? else {
                        return Err(self.err("expected prefix name after @prefix"));
                    };
                    let prefix = pname
                        .strip_suffix(':')
                        .ok_or_else(|| self.err("prefix must end with ':'"))?
                        .to_string();
                    let Tok::Iri(iri) = self.next()? else {
                        return Err(self.err("expected IRI in @prefix"));
                    };
                    // SPARQL-style PREFIX has no trailing dot.
                    if matches!(self.peek()?, Tok::Dot) {
                        self.next()?;
                    }
                    self.nss.bind(prefix, iri);
                }
                _ => self.parse_statement(graph)?,
            }
        }
    }

    fn parse_subject(&mut self) -> Result<Subject, ParseError> {
        match self.next()? {
            Tok::Iri(i) => Ok(Subject::Iri(Iri::new(i))),
            Tok::PName(p) => Ok(Subject::Iri(self.resolve_pname(&p)?)),
            Tok::Blank(b) => Ok(Subject::Blank(BlankNode::new(b))),
            other => Err(self.err(format!("expected subject, got {other:?}"))),
        }
    }

    fn parse_predicate(&mut self) -> Result<Iri, ParseError> {
        match self.next()? {
            Tok::A => Ok(Iri::new(ns::RDF_TYPE)),
            Tok::Iri(i) => Ok(Iri::new(i)),
            Tok::PName(p) => self.resolve_pname(&p),
            other => Err(self.err(format!("expected predicate, got {other:?}"))),
        }
    }

    fn parse_object(&mut self) -> Result<Term, ParseError> {
        match self.next()? {
            Tok::Iri(i) => Ok(Term::iri(i)),
            Tok::PName(p) => Ok(Term::Iri(self.resolve_pname(&p)?)),
            Tok::Blank(b) => Ok(Term::Blank(BlankNode::new(b))),
            Tok::Bool(b) => Ok(Term::Literal(Literal::boolean(b))),
            Tok::Number(n) => {
                let dt = if n.contains('.') || n.contains('e') || n.contains('E') {
                    ns::XSD_DOUBLE
                } else {
                    ns::XSD_INTEGER
                };
                Ok(Term::Literal(Literal::typed(n, Iri::new(dt))))
            }
            Tok::Str(body) => match self.peek()? {
                Tok::DoubleCaret => {
                    self.next()?;
                    let dt = match self.next()? {
                        Tok::Iri(i) => Iri::new(i),
                        Tok::PName(p) => self.resolve_pname(&p)?,
                        other => {
                            return Err(self.err(format!("expected datatype, got {other:?}")))
                        }
                    };
                    Ok(Term::Literal(Literal::typed(body, dt)))
                }
                Tok::LangTag(_) => {
                    let Tok::LangTag(lang) = self.next()? else {
                        unreachable!()
                    };
                    Ok(Term::Literal(Literal::lang_tagged(body, lang)))
                }
                _ => Ok(Term::Literal(Literal::plain(body))),
            },
            other => Err(self.err(format!("expected object, got {other:?}"))),
        }
    }

    fn parse_statement(&mut self, graph: &mut Graph) -> Result<(), ParseError> {
        let subject = self.parse_subject()?;
        loop {
            let predicate = self.parse_predicate()?;
            loop {
                let object = self.parse_object()?;
                graph.insert(&Triple {
                    subject: subject.clone(),
                    predicate: predicate.clone(),
                    object,
                });
                match self.peek()? {
                    Tok::Comma => {
                        self.next()?;
                    }
                    _ => break,
                }
            }
            match self.next()? {
                Tok::Semi => {
                    // Permit trailing `;` before `.` (common in the wild).
                    if matches!(self.peek()?, Tok::Dot) {
                        self.next()?;
                        return Ok(());
                    }
                }
                Tok::Dot => return Ok(()),
                other => {
                    return Err(self.err(format!("expected ';' or '.', got {other:?}")));
                }
            }
        }
    }
}

/// Parse a Turtle document into a new graph. Returns the graph and the
/// prefix table declared by the document.
pub fn parse(src: &str) -> Result<(Graph, Namespaces), ParseError> {
    let mut graph = Graph::new();
    let mut p = Parser::new(src);
    p.parse_document(&mut graph)?;
    Ok((graph, p.nss))
}

/// Parse a Turtle document, merging its triples into `graph`.
pub fn parse_into(src: &str, graph: &mut Graph) -> Result<Namespaces, ParseError> {
    let mut p = Parser::new(src);
    p.parse_document(graph)?;
    Ok(p.nss)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> Graph {
        let mut g = Graph::new();
        let s = Subject::iri(format!("{}ds1", ns::RESOURCE));
        g.insert(&Triple::new(
            s.clone(),
            Iri::new(ns::RDF_TYPE),
            Term::iri(format!("{}Dataset", ns::PROVIO)),
        ));
        g.insert(&Triple::new(
            s.clone(),
            Iri::new(format!("{}wasReadBy", ns::PROVIO)),
            Term::iri(format!("{}read-42", ns::RESOURCE)),
        ));
        g.insert(&Triple::new(
            s,
            Iri::new(ns::RDFS_LABEL),
            Literal::plain("/Timestep_0/x"),
        ));
        g
    }

    #[test]
    fn serialize_groups_by_subject() {
        let ttl = serialize(&sample_graph(), &Namespaces::standard());
        assert!(ttl.contains("@prefix provio:"));
        assert!(ttl.contains(" a provio:Dataset"));
        // One subject → exactly one terminating line block.
        assert_eq!(ttl.matches("urn:provio:ds1").count(), 1);
    }

    #[test]
    fn round_trip_preserves_graph() {
        let g = sample_graph();
        let ttl = serialize(&g, &Namespaces::standard());
        let (g2, _) = parse(&ttl).unwrap();
        assert_eq!(g.len(), g2.len());
        for t in g.iter() {
            assert!(g2.contains(&t), "missing {t}");
        }
    }

    #[test]
    fn parse_hand_written_forms() {
        let src = r#"
            @prefix ex: <http://example.org/> .
            # a comment
            ex:a ex:p ex:b , ex:c ;
                 ex:q "lit" ;
                 ex:n 42 ;
                 ex:d 1.5 ;
                 ex:t true ;
                 a ex:Thing .
            _:b0 ex:p "tagged"@en .
            <http://example.org/x> <http://example.org/y> "typed"^^ex:dt .
        "#;
        let (g, nss) = parse(src).unwrap();
        assert_eq!(nss.expand_prefix("ex"), Some("http://example.org/"));
        assert_eq!(g.len(), 9);
        let objs = g.objects(
            &Subject::iri("http://example.org/a"),
            &Iri::new("http://example.org/n"),
        );
        assert_eq!(objs[0].as_literal().unwrap().as_i64(), Some(42));
    }

    #[test]
    fn parse_rejects_unknown_prefix() {
        let err = parse("zzz:a zzz:b zzz:c .").unwrap_err();
        assert!(err.message.contains("unknown prefix"));
    }

    #[test]
    fn parse_rejects_unterminated_iri() {
        assert!(parse("<http://unterminated").is_err());
    }

    #[test]
    fn parse_rejects_literal_subject() {
        assert!(parse("\"lit\" <urn:p> <urn:o> .").is_err());
    }

    #[test]
    fn escapes_round_trip_through_document() {
        let mut g = Graph::new();
        g.insert(&Triple::new(
            Subject::iri("urn:s"),
            Iri::new("urn:p"),
            Literal::plain("line1\nline2\t\"quoted\" back\\slash"),
        ));
        let ttl = serialize(&g, &Namespaces::standard());
        let (g2, _) = parse(&ttl).unwrap();
        let objs = g2.objects(&Subject::iri("urn:s"), &Iri::new("urn:p"));
        assert_eq!(
            objs[0].as_literal().unwrap().lexical(),
            "line1\nline2\t\"quoted\" back\\slash"
        );
    }

    #[test]
    fn serialization_is_deterministic() {
        let g = sample_graph();
        let a = serialize(&g, &Namespaces::standard());
        let b = serialize(&g, &Namespaces::standard());
        assert_eq!(a, b);
        // Insertion order must not matter.
        let mut g2 = Graph::new();
        let mut ts: Vec<Triple> = g.iter().collect();
        ts.reverse();
        for t in &ts {
            g2.insert(t);
        }
        assert_eq!(a, serialize(&g2, &Namespaces::standard()));
    }

    #[test]
    fn trailing_semicolon_tolerated() {
        let src = "@prefix ex: <http://e/> . ex:a ex:p ex:b ; .";
        let (g, _) = parse(src).unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn blank_label_before_dot_not_swallowed() {
        let src = "@prefix ex: <http://e/> . ex:a ex:p _:b1 . ex:c ex:p _:b1 .";
        let (g, _) = parse(src).unwrap();
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn unicode_literals_survive() {
        let mut g = Graph::new();
        g.insert(&Triple::new(
            Subject::iri("urn:s"),
            Iri::new("urn:p"),
            Literal::plain("WestSac—亚洲 données ✓"),
        ));
        let ttl = serialize(&g, &Namespaces::standard());
        let (g2, _) = parse(&ttl).unwrap();
        let objs = g2.objects(&Subject::iri("urn:s"), &Iri::new("urn:p"));
        assert_eq!(objs[0].as_literal().unwrap().lexical(), "WestSac—亚洲 données ✓");
    }
}
