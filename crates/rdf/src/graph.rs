//! The in-memory graph: term interning plus SPO/POS/OSP indexes.
//!
//! The tracker's write path is append-heavy (hundreds of thousands of inserts
//! per process in the H5bench experiments) and the query path is
//! lookup-heavy, so terms are interned once into [`TermId`]s and triples are
//! stored as id-triples in three hash indexes. All matching is done on ids;
//! owned [`Triple`]s are only materialized at the API boundary (cheap —
//! term payloads are `Arc<str>`).

use crate::term::{Iri, Subject, Term, TermView};
use crate::triple::{Triple, TriplePattern};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};

/// Dense id of an interned term within one [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

fn view_hash(v: TermView<'_>) -> u64 {
    // DefaultHasher with fixed keys: deterministic across graphs, so a
    // cloned graph keeps a working table.
    let mut h = std::collections::hash_map::DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

/// Term interner keyed by [`TermView`] hashes so lookups never allocate or
/// clone an `Arc` chain. Collisions are resolved by comparing the view
/// against the stored term.
#[derive(Debug, Default, Clone)]
struct Interner {
    terms: Vec<Term>,
    /// view-hash → candidate ids (almost always a single entry).
    ids: HashMap<u64, Vec<u32>>,
}

impl Interner {
    /// Intern by borrowed view; `make` produces the owned term only on
    /// first sight (typically an `Arc` clone from the caller's triple).
    fn intern_view(&mut self, v: TermView<'_>, make: impl FnOnce() -> Term) -> TermId {
        let h = view_hash(v);
        let bucket = self.ids.entry(h).or_default();
        for &id in bucket.iter() {
            if v.matches(&self.terms[id as usize]) {
                return TermId(id);
            }
        }
        let id = self.terms.len() as u32;
        self.terms.push(make());
        bucket.push(id);
        TermId(id)
    }

    fn intern(&mut self, t: &Term) -> TermId {
        self.intern_view(TermView::of(t), || t.clone())
    }

    fn get_view(&self, v: TermView<'_>) -> Option<TermId> {
        self.ids
            .get(&view_hash(v))?
            .iter()
            .copied()
            .find(|&id| v.matches(&self.terms[id as usize]))
            .map(TermId)
    }

    fn get(&self, t: &Term) -> Option<TermId> {
        self.get_view(TermView::of(t))
    }

    fn term(&self, id: TermId) -> &Term {
        &self.terms[id.0 as usize]
    }
}

pub(crate) type Pair = (u32, u32);

/// An indexed RDF graph.
#[derive(Debug, Default, Clone)]
pub struct Graph {
    interner: Interner,
    /// Canonical triple set (s, p, o) by id.
    triples: HashSet<(u32, u32, u32)>,
    /// Id-triples in insertion order. This is what incremental (delta)
    /// serialization walks: a writer remembers how many triples it has
    /// already persisted and serializes only `order[watermark..]` on the
    /// next flush. `remove` keeps the vec consistent but shifts later
    /// indices, so delta watermarks are only meaningful for append-only
    /// graphs (the provenance store never removes).
    order: Vec<(u32, u32, u32)>,
    /// s → [(p, o)]
    spo: HashMap<u32, Vec<Pair>>,
    /// p → [(o, s)]
    pos: HashMap<u32, Vec<Pair>>,
    /// o → [(s, p)]
    osp: HashMap<u32, Vec<Pair>>,
}

impl Graph {
    pub fn new() -> Self {
        Graph::default()
    }

    pub fn len(&self) -> usize {
        self.triples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Number of distinct interned terms.
    pub fn term_count(&self) -> usize {
        self.interner.terms.len()
    }

    /// Insert a triple. Returns `false` if it was already present.
    ///
    /// Interner lookups go through borrowed [`TermView`] keys: a triple
    /// whose terms are already interned costs zero allocations and zero
    /// `Arc` refcount traffic to insert.
    pub fn insert(&mut self, t: &Triple) -> bool {
        let s = self
            .interner
            .intern_view(TermView::of_subject(&t.subject), || {
                Term::from(t.subject.clone())
            });
        let p = self
            .interner
            .intern_view(TermView::of_iri(&t.predicate), || {
                Term::Iri(t.predicate.clone())
            });
        let o = self
            .interner
            .intern_view(TermView::of(&t.object), || t.object.clone());
        self.insert_ids(s, p, o)
    }

    /// Insert by pre-interned ids (hot path for bulk loads).
    pub fn insert_ids(&mut self, s: TermId, p: TermId, o: TermId) -> bool {
        if !self.triples.insert((s.0, p.0, o.0)) {
            return false;
        }
        self.order.push((s.0, p.0, o.0));
        self.spo.entry(s.0).or_default().push((p.0, o.0));
        self.pos.entry(p.0).or_default().push((o.0, s.0));
        self.osp.entry(o.0).or_default().push((s.0, p.0));
        true
    }

    /// Intern a term without inserting any triple.
    pub fn intern(&mut self, t: &Term) -> TermId {
        self.interner.intern(t)
    }

    /// Look up a term's id if it is interned.
    pub fn term_id(&self, t: &Term) -> Option<TermId> {
        self.interner.get(t)
    }

    /// The term behind an id. Panics on a foreign id.
    pub fn term(&self, id: TermId) -> &Term {
        self.interner.term(id)
    }

    pub fn contains(&self, t: &Triple) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.interner.get_view(TermView::of_subject(&t.subject)),
            self.interner.get_view(TermView::of_iri(&t.predicate)),
            self.interner.get_view(TermView::of(&t.object)),
        ) else {
            return false;
        };
        self.triples.contains(&(s.0, p.0, o.0))
    }

    /// Remove a triple. Returns `true` if it was present.
    pub fn remove(&mut self, t: &Triple) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.interner.get_view(TermView::of_subject(&t.subject)),
            self.interner.get_view(TermView::of_iri(&t.predicate)),
            self.interner.get_view(TermView::of(&t.object)),
        ) else {
            return false;
        };
        if !self.triples.remove(&(s.0, p.0, o.0)) {
            return false;
        }
        if let Some(pos) = self
            .order
            .iter()
            .rposition(|&ids| ids == (s.0, p.0, o.0))
        {
            self.order.remove(pos);
        }
        fn drop_pair(index: &mut HashMap<u32, Vec<Pair>>, key: u32, pair: Pair) {
            if let Entry::Occupied(mut e) = index.entry(key) {
                let v = e.get_mut();
                if let Some(pos) = v.iter().position(|&x| x == pair) {
                    v.swap_remove(pos);
                }
                if v.is_empty() {
                    e.remove();
                }
            }
        }
        drop_pair(&mut self.spo, s.0, (p.0, o.0));
        drop_pair(&mut self.pos, p.0, (o.0, s.0));
        drop_pair(&mut self.osp, o.0, (s.0, p.0));
        true
    }

    /// Iterate all triples (materialized; insertion order).
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.order.iter().map(move |&(s, p, o)| self.rebuild(s, p, o))
    }

    /// Iterate all triples as id tuples, in insertion order.
    pub fn iter_ids(&self) -> impl Iterator<Item = (TermId, TermId, TermId)> + '_ {
        self.order
            .iter()
            .map(|&(s, p, o)| (TermId(s), TermId(p), TermId(o)))
    }

    /// Id-triples inserted at or after insertion index `start`, in
    /// insertion order — the delta a serialization watermark has not yet
    /// persisted. `start` values come from a previous [`Graph::len`] taken
    /// on this graph (valid only while the graph is append-only).
    pub fn ids_from(&self, start: usize) -> &[(u32, u32, u32)] {
        &self.order[start.min(self.order.len())..]
    }

    /// All interned terms in id order (`terms()[i]` is the term behind
    /// `TermId(i)`).
    pub fn terms(&self) -> &[Term] {
        &self.interner.terms
    }

    fn rebuild(&self, s: u32, p: u32, o: u32) -> Triple {
        let subject = self
            .interner
            .term(TermId(s))
            .as_subject()
            .expect("subject position holds IRI or blank");
        let Term::Iri(predicate) = self.interner.term(TermId(p)).clone() else {
            panic!("predicate position holds IRI");
        };
        Triple {
            subject,
            predicate,
            object: self.interner.term(TermId(o)).clone(),
        }
    }

    /// Match a pattern, choosing the most selective index available.
    pub fn match_pattern(&self, pat: &TriplePattern) -> Vec<Triple> {
        self.match_ids(
            pat.subject
                .as_ref()
                .map(|s| self.interner.get_view(TermView::of_subject(s))),
            pat.predicate
                .as_ref()
                .map(|p| self.interner.get_view(TermView::of_iri(p))),
            pat.object.as_ref().map(|o| self.interner.get(o)),
        )
        .into_iter()
        .map(|(s, p, o)| self.rebuild(s.0, p.0, o.0))
        .collect()
    }

    /// Id-level matching. Each position is `None` (wildcard) or
    /// `Some(Option<TermId>)` — `Some(None)` means the pattern binds a term
    /// that is not interned here, so nothing can match.
    pub fn match_ids(
        &self,
        s: Option<Option<TermId>>,
        p: Option<Option<TermId>>,
        o: Option<Option<TermId>>,
    ) -> Vec<(TermId, TermId, TermId)> {
        // A bound-but-unknown term can never match.
        let s = match s {
            Some(None) => return Vec::new(),
            Some(Some(id)) => Some(id.0),
            None => None,
        };
        let p = match p {
            Some(None) => return Vec::new(),
            Some(Some(id)) => Some(id.0),
            None => None,
        };
        let o = match o {
            Some(None) => return Vec::new(),
            Some(Some(id)) => Some(id.0),
            None => None,
        };

        let mut out = Vec::new();
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                if self.triples.contains(&(s, p, o)) {
                    out.push((TermId(s), TermId(p), TermId(o)));
                }
            }
            (Some(s), p, o) => {
                if let Some(pairs) = self.spo.get(&s) {
                    for &(tp, to) in pairs {
                        if p.is_none_or(|p| p == tp) && o.is_none_or(|o| o == to) {
                            out.push((TermId(s), TermId(tp), TermId(to)));
                        }
                    }
                }
            }
            (None, Some(p), o) => {
                if let Some(pairs) = self.pos.get(&p) {
                    for &(to, ts) in pairs {
                        if o.is_none_or(|o| o == to) {
                            out.push((TermId(ts), TermId(p), TermId(to)));
                        }
                    }
                }
            }
            (None, None, Some(o)) => {
                if let Some(pairs) = self.osp.get(&o) {
                    for &(ts, tp) in pairs {
                        out.push((TermId(ts), TermId(tp), TermId(o)));
                    }
                }
            }
            (None, None, None) => {
                out.extend(
                    self.triples
                        .iter()
                        .map(|&(s, p, o)| (TermId(s), TermId(p), TermId(o))),
                );
            }
        }
        out
    }

    /// Estimated number of matches for a pattern shape, used for join
    /// ordering without materializing results.
    pub fn cardinality_estimate(
        &self,
        s: Option<Option<TermId>>,
        p: Option<Option<TermId>>,
        o: Option<Option<TermId>>,
    ) -> usize {
        if matches!(s, Some(None)) || matches!(p, Some(None)) || matches!(o, Some(None)) {
            return 0;
        }
        let s = s.flatten();
        let p = p.flatten();
        let o = o.flatten();
        match (s, p, o) {
            (Some(_), Some(_), Some(_)) => 1,
            (Some(s), _, _) => self.spo.get(&s.0).map_or(0, Vec::len),
            (None, Some(p), _) => self.pos.get(&p.0).map_or(0, Vec::len),
            (None, None, Some(o)) => self.osp.get(&o.0).map_or(0, Vec::len),
            (None, None, None) => self.len(),
        }
    }

    /// All distinct subjects, in insertion-id order.
    pub fn subjects(&self) -> Vec<Subject> {
        let mut ids: Vec<u32> = self.spo.keys().copied().collect();
        ids.sort_unstable();
        ids.iter()
            .filter_map(|&s| self.interner.term(TermId(s)).as_subject())
            .collect()
    }

    /// All distinct predicates.
    pub fn predicates(&self) -> Vec<Iri> {
        let mut ids: Vec<u32> = self.pos.keys().copied().collect();
        ids.sort_unstable();
        ids.iter()
            .filter_map(|&p| match self.interner.term(TermId(p)) {
                Term::Iri(i) => Some(i.clone()),
                _ => None,
            })
            .collect()
    }

    /// Merge all triples of `other` into `self`. Duplicate triples collapse,
    /// which is what makes the per-process sub-graph strategy of the paper's
    /// provenance store safe: GUID-keyed nodes appearing in several
    /// sub-graphs merge without duplication.
    ///
    /// Bulk path: every term of `other` is interned into `self` exactly
    /// once up front (one hash probe per *distinct* term), then triples are
    /// inserted by pre-mapped ids — no per-triple term materialization or
    /// re-hashing. This is what makes parallel sub-graph merging pay off:
    /// scratch graphs parsed on worker threads fold into the final graph at
    /// id speed.
    pub fn merge(&mut self, other: &Graph) -> usize {
        let map: Vec<u32> = other
            .interner
            .terms
            .iter()
            .map(|t| self.interner.intern(t).0)
            .collect();
        let mut added = 0;
        for &(s, p, o) in &other.order {
            if self.insert_ids(
                TermId(map[s as usize]),
                TermId(map[p as usize]),
                TermId(map[o as usize]),
            ) {
                added += 1;
            }
        }
        added
    }

    /// The s → [(p, o)] index (serializer-internal).
    pub(crate) fn spo_index(&self) -> &HashMap<u32, Vec<Pair>> {
        &self.spo
    }

    /// The term behind a raw interner id (serializer-internal).
    pub(crate) fn term_raw(&self, id: u32) -> &Term {
        self.interner.term(TermId(id))
    }

    /// Objects reachable from `subject` via `predicate`.
    pub fn objects(&self, subject: &Subject, predicate: &Iri) -> Vec<Term> {
        self.match_pattern(
            &TriplePattern::any()
                .with_subject(subject.clone())
                .with_predicate(predicate.clone()),
        )
        .into_iter()
        .map(|t| t.object)
        .collect()
    }

    /// Subjects with `predicate` = `object`.
    pub fn subjects_with(&self, predicate: &Iri, object: &Term) -> Vec<Subject> {
        self.match_pattern(
            &TriplePattern::any()
                .with_predicate(predicate.clone())
                .with_object(object.clone()),
        )
        .into_iter()
        .map(|t| t.subject)
        .collect()
    }
}

impl Extend<Triple> for Graph {
    fn extend<I: IntoIterator<Item = Triple>>(&mut self, iter: I) {
        for t in iter {
            self.insert(&t);
        }
    }
}

impl FromIterator<Triple> for Graph {
    fn from_iter<I: IntoIterator<Item = Triple>>(iter: I) -> Self {
        let mut g = Graph::new();
        g.extend(iter);
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Literal;

    fn tr(s: &str, p: &str, o: &str) -> Triple {
        Triple::new(Subject::iri(s), Iri::new(p), Term::iri(o))
    }

    #[test]
    fn insert_dedups() {
        let mut g = Graph::new();
        assert!(g.insert(&tr("urn:a", "urn:p", "urn:b")));
        assert!(!g.insert(&tr("urn:a", "urn:p", "urn:b")));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn contains_and_remove() {
        let mut g = Graph::new();
        let t = tr("urn:a", "urn:p", "urn:b");
        g.insert(&t);
        assert!(g.contains(&t));
        assert!(g.remove(&t));
        assert!(!g.contains(&t));
        assert!(!g.remove(&t));
        assert_eq!(g.len(), 0);
        // Indexes are cleaned: a fresh match finds nothing.
        assert!(g.match_pattern(&TriplePattern::any()).is_empty());
    }

    #[test]
    fn match_by_each_position() {
        let mut g = Graph::new();
        g.insert(&tr("urn:a", "urn:p", "urn:b"));
        g.insert(&tr("urn:a", "urn:q", "urn:c"));
        g.insert(&tr("urn:x", "urn:p", "urn:b"));

        let by_s = g.match_pattern(&TriplePattern::any().with_subject(Subject::iri("urn:a")));
        assert_eq!(by_s.len(), 2);

        let by_p = g.match_pattern(&TriplePattern::any().with_predicate(Iri::new("urn:p")));
        assert_eq!(by_p.len(), 2);

        let by_o = g.match_pattern(&TriplePattern::any().with_object(Term::iri("urn:b")));
        assert_eq!(by_o.len(), 2);

        let exact = g.match_pattern(
            &TriplePattern::any()
                .with_subject(Subject::iri("urn:x"))
                .with_predicate(Iri::new("urn:p"))
                .with_object(Term::iri("urn:b")),
        );
        assert_eq!(exact.len(), 1);
    }

    #[test]
    fn match_unknown_term_is_empty() {
        let mut g = Graph::new();
        g.insert(&tr("urn:a", "urn:p", "urn:b"));
        let got =
            g.match_pattern(&TriplePattern::any().with_subject(Subject::iri("urn:missing")));
        assert!(got.is_empty());
    }

    #[test]
    fn literals_as_objects() {
        let mut g = Graph::new();
        g.insert(&Triple::new(
            Subject::iri("urn:a"),
            Iri::new("urn:val"),
            Literal::integer(5),
        ));
        let objs = g.objects(&Subject::iri("urn:a"), &Iri::new("urn:val"));
        assert_eq!(objs.len(), 1);
        assert_eq!(objs[0].as_literal().unwrap().as_i64(), Some(5));
    }

    #[test]
    fn merge_collapses_duplicates() {
        let mut a = Graph::new();
        a.insert(&tr("urn:a", "urn:p", "urn:b"));
        a.insert(&tr("urn:a", "urn:p", "urn:c"));
        let mut b = Graph::new();
        b.insert(&tr("urn:a", "urn:p", "urn:b"));
        b.insert(&tr("urn:z", "urn:p", "urn:b"));
        let added = a.merge(&b);
        assert_eq!(added, 1);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn subjects_and_predicates_enumerations() {
        let mut g = Graph::new();
        g.insert(&tr("urn:a", "urn:p", "urn:b"));
        g.insert(&tr("urn:b", "urn:q", "urn:c"));
        assert_eq!(g.subjects().len(), 2);
        assert_eq!(g.predicates().len(), 2);
    }

    #[test]
    fn cardinality_estimates_order_correctly() {
        let mut g = Graph::new();
        for i in 0..10 {
            g.insert(&tr("urn:hub", "urn:p", &format!("urn:o{i}")));
        }
        g.insert(&tr("urn:solo", "urn:q", "urn:x"));
        let hub = g.term_id(&Term::iri("urn:hub"));
        let solo = g.term_id(&Term::iri("urn:solo"));
        let est_hub = g.cardinality_estimate(Some(hub), None, None);
        let est_solo = g.cardinality_estimate(Some(solo), None, None);
        assert!(est_hub > est_solo);
        assert_eq!(g.cardinality_estimate(None, None, None), g.len());
        // Unknown bound term → 0.
        assert_eq!(g.cardinality_estimate(Some(None), None, None), 0);
    }

    #[test]
    fn iter_roundtrips_all_triples() {
        let mut g = Graph::new();
        let ts = vec![
            tr("urn:a", "urn:p", "urn:b"),
            tr("urn:b", "urn:p", "urn:c"),
            tr("urn:c", "urn:q", "urn:a"),
        ];
        for t in &ts {
            g.insert(t);
        }
        let mut got: Vec<String> = g.iter().map(|t| t.to_string()).collect();
        let mut want: Vec<String> = ts.iter().map(|t| t.to_string()).collect();
        got.sort();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn insertion_order_and_delta_slices() {
        let mut g = Graph::new();
        g.insert(&tr("urn:a", "urn:p", "urn:b"));
        g.insert(&tr("urn:c", "urn:p", "urn:d"));
        let mark = g.len();
        g.insert(&tr("urn:e", "urn:p", "urn:f"));
        g.insert(&tr("urn:a", "urn:p", "urn:b")); // dup: not re-ordered
        let delta = g.ids_from(mark);
        assert_eq!(delta.len(), 1);
        let (s, _, _) = delta[0];
        assert_eq!(g.term(TermId(s)), &Term::iri("urn:e"));
        // Full iteration follows insertion order.
        let subjects: Vec<String> = g.iter().map(|t| t.subject.to_string()).collect();
        assert_eq!(subjects, vec!["<urn:a>", "<urn:c>", "<urn:e>"]);
        // Past-the-end start is an empty delta, not a panic.
        assert!(g.ids_from(999).is_empty());
    }

    #[test]
    fn remove_keeps_order_consistent() {
        let mut g = Graph::new();
        g.insert(&tr("urn:a", "urn:p", "urn:b"));
        g.insert(&tr("urn:c", "urn:p", "urn:d"));
        g.insert(&tr("urn:e", "urn:p", "urn:f"));
        g.remove(&tr("urn:c", "urn:p", "urn:d"));
        assert_eq!(g.len(), 2);
        assert_eq!(g.iter().count(), 2);
        assert_eq!(g.ids_from(0).len(), 2);
    }

    #[test]
    fn bulk_merge_matches_naive_merge() {
        let mut a = Graph::new();
        let mut b = Graph::new();
        for i in 0..50 {
            a.insert(&tr(&format!("urn:s{i}"), "urn:p", "urn:o"));
            b.insert(&tr(&format!("urn:s{}", i + 25), "urn:q", "urn:o"));
        }
        let mut naive = a.clone();
        let mut naive_added = 0;
        for t in b.iter() {
            if naive.insert(&t) {
                naive_added += 1;
            }
        }
        let added = a.merge(&b);
        assert_eq!(added, naive_added);
        assert_eq!(a.len(), naive.len());
        for t in naive.iter() {
            assert!(a.contains(&t));
        }
    }

    #[test]
    fn cloned_graph_interner_still_resolves() {
        let mut g = Graph::new();
        g.insert(&tr("urn:a", "urn:p", "urn:b"));
        let mut g2 = g.clone();
        assert!(g2.contains(&tr("urn:a", "urn:p", "urn:b")));
        assert!(!g2.insert(&tr("urn:a", "urn:p", "urn:b")), "dedup survives clone");
        g2.insert(&tr("urn:x", "urn:p", "urn:b"));
        assert_eq!(g2.len(), 2);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn blank_subjects_supported() {
        let mut g = Graph::new();
        let t = Triple::new(
            crate::term::BlankNode::new("b0"),
            Iri::new("urn:p"),
            Term::iri("urn:x"),
        );
        g.insert(&t);
        assert!(g.contains(&t));
        assert_eq!(g.subjects().len(), 1);
    }
}
