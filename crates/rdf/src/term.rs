//! RDF terms: IRIs, blank nodes, and literals.
//!
//! Terms are cheap to clone (`Arc<str>` payloads) because the tracker clones
//! the same subject/predicate terms into many triples on the hot path.

use std::fmt;
use std::sync::Arc;

/// An IRI (used for named nodes and predicates).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Iri(Arc<str>);

impl Iri {
    pub fn new(iri: impl Into<Arc<str>>) -> Self {
        Iri(iri.into())
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Iri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}>", self.0)
    }
}

impl From<&str> for Iri {
    fn from(s: &str) -> Self {
        Iri::new(s)
    }
}

impl From<String> for Iri {
    fn from(s: String) -> Self {
        Iri::new(s)
    }
}

/// A blank (anonymous) node with a document-scoped label.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlankNode(Arc<str>);

impl BlankNode {
    pub fn new(label: impl Into<Arc<str>>) -> Self {
        BlankNode(label.into())
    }

    pub fn label(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for BlankNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_:{}", self.0)
    }
}

/// A literal: lexical form plus an optional datatype IRI or language tag.
///
/// Exactly one of `datatype`/`lang` may be set; a plain literal has neither
/// (it is implicitly `xsd:string`, which we do not materialize, matching
/// Turtle's compact form).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    lexical: Arc<str>,
    datatype: Option<Iri>,
    lang: Option<Arc<str>>,
}

impl Literal {
    /// A plain string literal.
    pub fn plain(lexical: impl Into<Arc<str>>) -> Self {
        Literal {
            lexical: lexical.into(),
            datatype: None,
            lang: None,
        }
    }

    /// A literal with an explicit datatype.
    pub fn typed(lexical: impl Into<Arc<str>>, datatype: Iri) -> Self {
        Literal {
            lexical: lexical.into(),
            datatype: Some(datatype),
            lang: None,
        }
    }

    /// A language-tagged string.
    pub fn lang_tagged(lexical: impl Into<Arc<str>>, lang: impl Into<Arc<str>>) -> Self {
        Literal {
            lexical: lexical.into(),
            datatype: None,
            lang: Some(lang.into()),
        }
    }

    /// An `xsd:integer` literal.
    pub fn integer(v: i64) -> Self {
        Literal::typed(v.to_string(), Iri::new(crate::namespace::ns::XSD_INTEGER))
    }

    /// An `xsd:double` literal.
    pub fn double(v: f64) -> Self {
        Literal::typed(format!("{v:?}"), Iri::new(crate::namespace::ns::XSD_DOUBLE))
    }

    /// An `xsd:boolean` literal.
    pub fn boolean(v: bool) -> Self {
        Literal::typed(v.to_string(), Iri::new(crate::namespace::ns::XSD_BOOLEAN))
    }

    pub fn lexical(&self) -> &str {
        &self.lexical
    }

    pub fn datatype(&self) -> Option<&Iri> {
        self.datatype.as_ref()
    }

    pub fn lang(&self) -> Option<&str> {
        self.lang.as_deref()
    }

    /// Parse the lexical form as an integer if the datatype is numeric (or
    /// absent and the form happens to parse).
    pub fn as_i64(&self) -> Option<i64> {
        self.lexical.parse().ok()
    }

    /// Parse the lexical form as a double.
    pub fn as_f64(&self) -> Option<f64> {
        self.lexical.parse().ok()
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"{}\"", escape_literal(&self.lexical))?;
        if let Some(dt) = &self.datatype {
            write!(f, "^^{}", dt)?;
        } else if let Some(lang) = &self.lang {
            write!(f, "@{}", lang)?;
        }
        Ok(())
    }
}

/// Escape a literal's lexical form for Turtle/N-Triples double-quoted strings.
pub fn escape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

/// Unescape a double-quoted string body. Returns `None` on a malformed
/// escape sequence.
pub fn unescape_literal(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return None;
                }
                let v = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(v)?);
            }
            'U' => {
                let hex: String = chars.by_ref().take(8).collect();
                if hex.len() != 8 {
                    return None;
                }
                let v = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(v)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

/// A borrowed, allocation-free view of a [`Term`], used as a lookup key.
///
/// The graph's interner keys its id table on hashes of `TermView`s rather
/// than owned [`Term`]s, so hot-path lookups (`Graph::insert` on an
/// already-interned term, `Graph::contains`, pattern matching) never clone
/// an `Arc` chain just to build a key. A view can be taken from a `Term`, a
/// [`Subject`], or a bare [`Iri`] without touching any refcount.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TermView<'a> {
    Iri(&'a str),
    Blank(&'a str),
    Literal {
        lexical: &'a str,
        datatype: Option<&'a str>,
        lang: Option<&'a str>,
    },
}

impl<'a> TermView<'a> {
    pub fn of(t: &'a Term) -> Self {
        match t {
            Term::Iri(i) => TermView::Iri(i.as_str()),
            Term::Blank(b) => TermView::Blank(b.label()),
            Term::Literal(l) => TermView::Literal {
                lexical: l.lexical(),
                datatype: l.datatype().map(Iri::as_str),
                lang: l.lang(),
            },
        }
    }

    pub fn of_subject(s: &'a Subject) -> Self {
        match s {
            Subject::Iri(i) => TermView::Iri(i.as_str()),
            Subject::Blank(b) => TermView::Blank(b.label()),
        }
    }

    pub fn of_iri(i: &'a Iri) -> Self {
        TermView::Iri(i.as_str())
    }

    /// Does this view denote the same RDF term as `t`?
    pub fn matches(self, t: &Term) -> bool {
        self == TermView::of(t)
    }
}

impl std::hash::Hash for TermView<'_> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            TermView::Iri(s) => {
                state.write_u8(0);
                state.write(s.as_bytes());
            }
            TermView::Blank(s) => {
                state.write_u8(1);
                state.write(s.as_bytes());
            }
            TermView::Literal {
                lexical,
                datatype,
                lang,
            } => {
                state.write_u8(2);
                state.write(lexical.as_bytes());
                state.write_u8(3);
                if let Some(dt) = datatype {
                    state.write(dt.as_bytes());
                }
                state.write_u8(4);
                if let Some(l) = lang {
                    state.write(l.as_bytes());
                }
            }
        }
    }
}

/// A triple subject: an IRI or a blank node.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Subject {
    Iri(Iri),
    Blank(BlankNode),
}

impl Subject {
    pub fn iri(s: impl Into<Arc<str>>) -> Self {
        Subject::Iri(Iri::new(s))
    }

    pub fn as_iri(&self) -> Option<&Iri> {
        match self {
            Subject::Iri(i) => Some(i),
            Subject::Blank(_) => None,
        }
    }
}

impl fmt::Display for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Subject::Iri(i) => i.fmt(f),
            Subject::Blank(b) => b.fmt(f),
        }
    }
}

impl From<Iri> for Subject {
    fn from(i: Iri) -> Self {
        Subject::Iri(i)
    }
}

impl From<BlankNode> for Subject {
    fn from(b: BlankNode) -> Self {
        Subject::Blank(b)
    }
}

/// Any RDF term (the object position admits all three kinds).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    Iri(Iri),
    Blank(BlankNode),
    Literal(Literal),
}

impl Term {
    pub fn iri(s: impl Into<Arc<str>>) -> Self {
        Term::Iri(Iri::new(s))
    }

    pub fn plain(s: impl Into<Arc<str>>) -> Self {
        Term::Literal(Literal::plain(s))
    }

    pub fn as_iri(&self) -> Option<&Iri> {
        match self {
            Term::Iri(i) => Some(i),
            _ => None,
        }
    }

    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(l) => Some(l),
            _ => None,
        }
    }

    pub fn as_subject(&self) -> Option<Subject> {
        match self {
            Term::Iri(i) => Some(Subject::Iri(i.clone())),
            Term::Blank(b) => Some(Subject::Blank(b.clone())),
            Term::Literal(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(i) => i.fmt(f),
            Term::Blank(b) => b.fmt(f),
            Term::Literal(l) => l.fmt(f),
        }
    }
}

impl From<Iri> for Term {
    fn from(i: Iri) -> Self {
        Term::Iri(i)
    }
}

impl From<BlankNode> for Term {
    fn from(b: BlankNode) -> Self {
        Term::Blank(b)
    }
}

impl From<Literal> for Term {
    fn from(l: Literal) -> Self {
        Term::Literal(l)
    }
}

impl From<Subject> for Term {
    fn from(s: Subject) -> Self {
        match s {
            Subject::Iri(i) => Term::Iri(i),
            Subject::Blank(b) => Term::Blank(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iri_display_wraps_in_angles() {
        assert_eq!(Iri::new("http://x/a").to_string(), "<http://x/a>");
    }

    #[test]
    fn blank_display() {
        assert_eq!(BlankNode::new("b1").to_string(), "_:b1");
    }

    #[test]
    fn plain_literal_display() {
        assert_eq!(Literal::plain("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn typed_literal_display() {
        assert_eq!(
            Literal::integer(42).to_string(),
            "\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>"
        );
    }

    #[test]
    fn lang_literal_display() {
        assert_eq!(
            Literal::lang_tagged("chat", "fr").to_string(),
            "\"chat\"@fr"
        );
    }

    #[test]
    fn escape_round_trip() {
        let nasty = "a\"b\\c\nd\te\rf";
        let escaped = escape_literal(nasty);
        assert!(!escaped.contains('\n'));
        assert_eq!(unescape_literal(&escaped).unwrap(), nasty);
    }

    #[test]
    fn unescape_unicode() {
        assert_eq!(unescape_literal("\\u0041").unwrap(), "A");
        assert_eq!(unescape_literal("\\U0001F600").unwrap(), "😀");
        assert!(unescape_literal("\\u00").is_none());
        assert!(unescape_literal("\\q").is_none());
    }

    #[test]
    fn literal_numeric_accessors() {
        assert_eq!(Literal::integer(-7).as_i64(), Some(-7));
        assert_eq!(Literal::double(1.5).as_f64(), Some(1.5));
        assert_eq!(Literal::plain("x").as_i64(), None);
    }

    #[test]
    fn term_subject_conversions() {
        let t = Term::iri("http://x/a");
        assert_eq!(t.as_subject(), Some(Subject::iri("http://x/a")));
        assert!(Term::plain("lit").as_subject().is_none());
    }

    #[test]
    fn double_formatting_preserves_value() {
        // `{:?}` on f64 prints enough digits to round-trip.
        let l = Literal::double(0.1 + 0.2);
        assert_eq!(l.as_f64().unwrap(), 0.1 + 0.2);
    }
}
