//! `provio-rdf` — an in-memory, indexed RDF triplestore with Turtle and
//! N-Triples serialization and parsing.
//!
//! This crate is the workspace's substitute for Redland librdf (paper §5,
//! "Provenance Store"): PROV-IO keeps one in-memory RDF graph per process,
//! serializes it to Turtle on the parallel file system, and merges per-process
//! sub-graph files after the run. Everything that contract needs is here:
//!
//! * [`Term`], [`Iri`], [`Literal`], [`BlankNode`] — RDF terms.
//! * [`Graph`] — an interned, triple-indexed (SPO/POS/OSP) graph with
//!   pattern matching, suitable for both the tracker's append-heavy write
//!   path and the query engine's lookup-heavy read path.
//! * [`turtle`] / [`ntriples`] — serializers and parsers that round-trip.
//! * [`Namespaces`] — prefix management with the W3C PROV and PROV-IO
//!   vocabularies built in.

pub mod graph;
pub mod namespace;
pub mod ntriples;
pub mod term;
pub mod triple;
pub mod turtle;

pub use graph::{Graph, TermId};
pub use namespace::{ns, Namespaces};
pub use term::{BlankNode, Iri, Literal, Subject, Term, TermView};
pub use triple::{Triple, TriplePattern};

/// Errors produced by the parsers in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl ParseError {
    pub fn new(line: usize, message: impl Into<String>) -> Self {
        ParseError {
            line,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}
