//! Namespace / prefix management.
//!
//! PROV-IO persists provenance using the W3C PROV-O vocabulary plus its own
//! `provio:` extension vocabulary (paper §4.1, Table 2). The IRIs for both
//! live here, along with a prefix table used by the Turtle serializer and the
//! SPARQL engine.

use crate::term::Iri;
use std::collections::BTreeMap;

/// Well-known vocabulary IRIs.
pub mod ns {
    /// RDF core.
    pub const RDF: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#";
    pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
    /// RDF Schema.
    pub const RDFS: &str = "http://www.w3.org/2000/01/rdf-schema#";
    pub const RDFS_LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";
    pub const RDFS_SUBCLASS_OF: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
    /// XML Schema datatypes.
    pub const XSD: &str = "http://www.w3.org/2001/XMLSchema#";
    pub const XSD_INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
    pub const XSD_DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
    pub const XSD_BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
    pub const XSD_DATETIME: &str = "http://www.w3.org/2001/XMLSchema#dateTime";
    pub const XSD_STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
    /// W3C PROV-O.
    pub const PROV: &str = "http://www.w3.org/ns/prov#";
    /// The PROV-IO extension vocabulary.
    pub const PROVIO: &str = "https://github.com/hpc-io/prov-io#";
    /// Run-scoped resource namespace (subjects minted by the tracker).
    pub const RESOURCE: &str = "urn:provio:";
}

/// A prefix table mapping prefix labels to namespace IRIs.
#[derive(Debug, Clone)]
pub struct Namespaces {
    // BTreeMap so serialization order is stable.
    by_prefix: BTreeMap<String, String>,
}

impl Default for Namespaces {
    fn default() -> Self {
        let mut n = Namespaces {
            by_prefix: BTreeMap::new(),
        };
        n.bind("rdf", ns::RDF);
        n.bind("rdfs", ns::RDFS);
        n.bind("xsd", ns::XSD);
        n.bind("prov", ns::PROV);
        n.bind("provio", ns::PROVIO);
        n
    }
}

impl Namespaces {
    /// The default table with the W3C + PROV-IO vocabularies bound.
    pub fn standard() -> Self {
        Self::default()
    }

    /// An empty table.
    pub fn empty() -> Self {
        Namespaces {
            by_prefix: BTreeMap::new(),
        }
    }

    /// Bind `prefix` to `iri`, replacing any previous binding.
    pub fn bind(&mut self, prefix: impl Into<String>, iri: impl Into<String>) {
        self.by_prefix.insert(prefix.into(), iri.into());
    }

    /// Resolve a prefix label to its namespace IRI.
    pub fn expand_prefix(&self, prefix: &str) -> Option<&str> {
        self.by_prefix.get(prefix).map(|s| s.as_str())
    }

    /// Expand a `prefix:local` qualified name into a full IRI.
    pub fn expand(&self, qname: &str) -> Option<Iri> {
        let (prefix, local) = qname.split_once(':')?;
        let base = self.expand_prefix(prefix)?;
        Some(Iri::new(format!("{base}{local}")))
    }

    /// Compact a full IRI into `prefix:local` if a binding covers it and the
    /// local part is a valid Turtle PN_LOCAL (conservatively: alphanumerics,
    /// `_`, `-`, `.` not at the ends).
    pub fn compact(&self, iri: &str) -> Option<String> {
        // Longest-prefix match so e.g. rdf: wins over a hypothetical shorter
        // binding of the same base.
        let mut best: Option<(&str, &str)> = None;
        for (prefix, base) in &self.by_prefix {
            if let Some(local) = iri.strip_prefix(base.as_str()) {
                if best.is_none_or(|(_, b)| base.len() > b.len()) {
                    best = Some((prefix, base));
                    let _ = local;
                }
            }
        }
        let (prefix, base) = best?;
        let local = &iri[base.len()..];
        if local.is_empty() || !is_pn_local(local) {
            return None;
        }
        Some(format!("{prefix}:{local}"))
    }

    /// Iterate `(prefix, iri)` bindings in stable order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.by_prefix.iter().map(|(p, i)| (p.as_str(), i.as_str()))
    }

    pub fn len(&self) -> usize {
        self.by_prefix.len()
    }

    pub fn is_empty(&self) -> bool {
        self.by_prefix.is_empty()
    }
}

/// Conservative check that `s` can appear as the local part of a prefixed
/// name without escaping.
fn is_pn_local(s: &str) -> bool {
    let bytes = s.as_bytes();
    if bytes.first() == Some(&b'.') || bytes.last() == Some(&b'.') {
        return false;
    }
    s.chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_table_has_prov_vocabularies() {
        let n = Namespaces::standard();
        assert_eq!(n.expand_prefix("prov"), Some(ns::PROV));
        assert_eq!(n.expand_prefix("provio"), Some(ns::PROVIO));
        assert!(n.expand_prefix("nope").is_none());
    }

    #[test]
    fn expand_qname() {
        let n = Namespaces::standard();
        assert_eq!(
            n.expand("prov:wasDerivedFrom").unwrap().as_str(),
            "http://www.w3.org/ns/prov#wasDerivedFrom"
        );
        assert!(n.expand("noColon").is_none());
        assert!(n.expand("zzz:x").is_none());
    }

    #[test]
    fn compact_round_trip() {
        let n = Namespaces::standard();
        let iri = format!("{}wasReadBy", ns::PROVIO);
        assert_eq!(n.compact(&iri).unwrap(), "provio:wasReadBy");
        assert_eq!(n.expand("provio:wasReadBy").unwrap().as_str(), iri);
    }

    #[test]
    fn compact_rejects_bad_local_parts() {
        let n = Namespaces::standard();
        // Slash in the local part → cannot compact safely.
        assert!(n.compact(&format!("{}a/b", ns::PROV)).is_none());
        // Empty local part.
        assert!(n.compact(ns::PROV).is_none());
        // Leading dot.
        assert!(n.compact(&format!("{}.x", ns::PROV)).is_none());
    }

    #[test]
    fn rebind_replaces() {
        let mut n = Namespaces::empty();
        n.bind("ex", "http://a/");
        n.bind("ex", "http://b/");
        assert_eq!(n.expand_prefix("ex"), Some("http://b/"));
        assert_eq!(n.len(), 1);
    }

    #[test]
    fn longest_prefix_wins() {
        let mut n = Namespaces::empty();
        n.bind("a", "http://x/");
        n.bind("b", "http://x/deep/");
        assert_eq!(n.compact("http://x/deep/leaf").unwrap(), "b:leaf");
    }
}
