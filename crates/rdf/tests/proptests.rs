//! Property-based tests for the RDF substrate: serializer/parser round
//! trips, graph index coherence, and merge algebra.

use proptest::prelude::*;
use provio_rdf::{
    ntriples, turtle, BlankNode, Graph, Iri, Literal, Namespaces, Subject, Term, Triple,
    TriplePattern,
};

fn arb_iri() -> impl Strategy<Value = Iri> {
    // IRIs with characters that stress the serializers but stay legal.
    "[a-z][a-z0-9_./-]{0,20}".prop_map(|s| Iri::new(format!("urn:t:{s}")))
}

fn arb_blank() -> impl Strategy<Value = BlankNode> {
    "[A-Za-z][A-Za-z0-9_-]{0,8}".prop_map(BlankNode::new)
}

fn arb_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        // Plain strings including escapes and unicode.
        "[ -~\\n\\t\u{e9}\u{4e9c}]{0,24}".prop_map(Literal::plain),
        any::<i64>().prop_map(Literal::integer),
        any::<bool>().prop_map(Literal::boolean),
        (-1e9f64..1e9f64).prop_map(Literal::double),
        ("[a-z ]{0,10}", "[a-z]{2,3}")
            .prop_map(|(s, l)| Literal::lang_tagged(s, l)),
    ]
}

fn arb_subject() -> impl Strategy<Value = Subject> {
    prop_oneof![
        4 => arb_iri().prop_map(Subject::Iri),
        1 => arb_blank().prop_map(Subject::Blank),
    ]
}

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        3 => arb_iri().prop_map(Term::Iri),
        1 => arb_blank().prop_map(Term::Blank),
        3 => arb_literal().prop_map(Term::Literal),
    ]
}

fn arb_triple() -> impl Strategy<Value = Triple> {
    (arb_subject(), arb_iri(), arb_term()).prop_map(|(s, p, o)| Triple {
        subject: s,
        predicate: p,
        object: o,
    })
}

fn arb_graph() -> impl Strategy<Value = Graph> {
    proptest::collection::vec(arb_triple(), 0..60).prop_map(|ts| ts.into_iter().collect())
}

fn graphs_equal(a: &Graph, b: &Graph) -> bool {
    a.len() == b.len() && a.iter().all(|t| b.contains(&t))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn turtle_round_trip(g in arb_graph()) {
        let ttl = turtle::serialize(&g, &Namespaces::standard());
        let (g2, _) = turtle::parse(&ttl).unwrap();
        prop_assert!(graphs_equal(&g, &g2), "turtle round-trip changed graph:\n{ttl}");
    }

    #[test]
    fn ntriples_round_trip(g in arb_graph()) {
        let nt = ntriples::serialize(&g);
        let g2 = ntriples::parse(&nt).unwrap();
        prop_assert!(graphs_equal(&g, &g2), "ntriples round-trip changed graph:\n{nt}");
    }

    #[test]
    fn formats_agree(g in arb_graph()) {
        // Turtle and N-Triples describe the same graph.
        let via_ttl = turtle::parse(&turtle::serialize(&g, &Namespaces::standard())).unwrap().0;
        let via_nt = ntriples::parse(&ntriples::serialize(&g)).unwrap();
        prop_assert!(graphs_equal(&via_ttl, &via_nt));
    }

    #[test]
    fn index_coherence(ts in proptest::collection::vec(arb_triple(), 0..40)) {
        // Every triple matched through any single-position index is in the
        // graph, and every inserted triple is reachable through all three.
        let g: Graph = ts.iter().cloned().collect();
        for t in &ts {
            let by_s = g.match_pattern(&TriplePattern::any().with_subject(t.subject.clone()));
            prop_assert!(by_s.contains(t));
            let by_p = g.match_pattern(&TriplePattern::any().with_predicate(t.predicate.clone()));
            prop_assert!(by_p.contains(t));
            let by_o = g.match_pattern(&TriplePattern::any().with_object(t.object.clone()));
            prop_assert!(by_o.contains(t));
        }
        let all = g.match_pattern(&TriplePattern::any());
        prop_assert_eq!(all.len(), g.len());
    }

    #[test]
    fn remove_then_absent(ts in proptest::collection::vec(arb_triple(), 1..30), idx in any::<prop::sample::Index>()) {
        let mut g: Graph = ts.iter().cloned().collect();
        let victim = ts[idx.index(ts.len())].clone();
        let before = g.len();
        prop_assert!(g.remove(&victim));
        prop_assert!(!g.contains(&victim));
        prop_assert_eq!(g.len(), before - 1);
        // Indexes agree with the set after removal.
        let all = g.match_pattern(&TriplePattern::any());
        prop_assert_eq!(all.len(), g.len());
        prop_assert!(!all.contains(&victim));
    }

    #[test]
    fn merge_idempotent_and_commutative(a in arb_graph(), b in arb_graph()) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ab2 = ab.clone();
        ab2.merge(&b);
        prop_assert!(graphs_equal(&ab, &ab2), "merge not idempotent");

        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert!(graphs_equal(&ab, &ba), "merge not commutative");
    }

    #[test]
    fn merge_models_subgraph_union(parts in proptest::collection::vec(arb_graph(), 1..5)) {
        // Paper §5: per-process sub-graphs merge into a complete graph with
        // no duplication. Union semantics: a triple is in the merge iff it
        // is in some part.
        let mut merged = Graph::new();
        for p in &parts {
            merged.merge(p);
        }
        for p in &parts {
            for t in p.iter() {
                prop_assert!(merged.contains(&t));
            }
        }
        for t in merged.iter() {
            prop_assert!(parts.iter().any(|p| p.contains(&t)));
        }
    }
}
