//! The Top Reco workflow (paper §3.1, Figure 3): GNN-based top-quark
//! reconstruction.
//!
//! Structure reproduced from the paper: the workflow reads an input-event
//! `.root` file and an `.ini` configuration, generates `.tfrecord`
//! training/test datasets, trains a GNN for E epochs, emits edge/node
//! scores, and reconstructs top quarks from the highest scores. Single
//! process, pure POSIX I/O.
//!
//! Training itself is simulated: each epoch charges modeled compute time
//! and produces a *deterministic* accuracy that depends on the
//! hyperparameter set and the epoch (a saturating learning curve), so the
//! config→accuracy mapping the provenance queries answer is meaningful and
//! reproducible.
//!
//! Instrumentation points match §6.4 exactly for both tools: the
//! configuration is recorded once at workflow start; training accuracy is
//! recorded at the end of every epoch.

use crate::cluster::Cluster;
use crate::metrics::{ProvMode, RunMetrics};
use provio::ProvIoApi;
use provio_hpcfs::{FsSession, OpenFlags};
use provio_provlake::ProvLakeTracker;
use provio_simrt::{DetRng, SimDuration, VirtualClock};
use std::fmt::Write as _;
use std::sync::Arc;

/// Run parameters.
#[derive(Clone)]
pub struct TopRecoParams {
    /// Training epochs (the x-axis of Figures 6(a)/7(a)).
    pub epochs: u32,
    /// Number of configuration fields (20/40/80 in Figure 8).
    pub n_configs: usize,
    /// Input physics events.
    pub n_events: u64,
    /// Modeled compute per epoch.
    pub epoch_compute: SimDuration,
    pub seed: u64,
    pub mode: ProvMode,
    /// Distinguishes concurrent runs on one cluster (paths, pids).
    pub run_id: u32,
}

impl Default for TopRecoParams {
    fn default() -> Self {
        TopRecoParams {
            epochs: 20,
            n_configs: 20,
            n_events: 100_000,
            epoch_compute: SimDuration::from_secs(60),
            seed: 7,
            mode: ProvMode::Off,
            run_id: 0,
        }
    }
}

/// Run outcome.
#[derive(Debug, Clone)]
pub struct TopRecoOutcome {
    pub metrics: RunMetrics,
    pub accuracy_curve: Vec<f64>,
    pub final_accuracy: f64,
    /// Where provenance was stored (for the query/visualization steps).
    pub prov_dir: String,
}

/// Deterministic hyperparameter set for a seed.
pub fn hyperparameters(seed: u64, n: usize) -> Vec<(String, String)> {
    let mut rng = DetRng::with_stream(seed, 0xC0FF);
    let mut out = Vec::with_capacity(n);
    let base = [
        ("learning_rate", vec!["0.01", "0.001", "0.0001"]),
        ("batch_size", vec!["32", "64", "128"]),
        ("hidden_dim", vec!["64", "128", "256"]),
        ("n_layers", vec!["2", "3", "4"]),
        ("dropout", vec!["0.0", "0.1", "0.3"]),
        ("preselection_pt_min", vec!["20", "25", "30"]),
        ("preselection_eta_max", vec!["2.1", "2.4", "2.7"]),
        ("optimizer", vec!["adam", "sgd"]),
    ];
    for i in 0..n {
        let (name, choices) = &base[i % base.len()];
        let suffix = if i < base.len() {
            String::new()
        } else {
            format!("_{}", i / base.len())
        };
        let v = choices[rng.below(choices.len() as u64) as usize];
        out.push((format!("{name}{suffix}"), v.to_string()));
    }
    out
}

/// The deterministic learning curve: a saturating exponential whose ceiling
/// and rate depend on the hyperparameters.
fn accuracy_at(seed: u64, hyper: &[(String, String)], epoch: u32) -> f64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed;
    for (k, v) in hyper {
        for b in k.bytes().chain(v.bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    let ceiling = 0.86 + (h % 1000) as f64 / 1000.0 * 0.12; // 0.86..0.98
    let tau = 6.0 + ((h >> 16) % 1000) as f64 / 1000.0 * 18.0; // 6..24 epochs
    let wobble = (((h >> 32) ^ (epoch as u64).wrapping_mul(0x9E37_79B9)) % 1000) as f64
        / 1000.0
        * 0.004;
    ceiling * (1.0 - (-((epoch + 1) as f64) / tau).exp()) + wobble
}

fn ini_text(hyper: &[(String, String)]) -> String {
    let mut s = String::from("[gnn]\n");
    for (k, v) in hyper {
        let _ = writeln!(s, "{k} = {v}");
    }
    s
}

/// Minimal INI reader (the workflow's own config parsing).
pub fn parse_ini(text: &str) -> Vec<(String, String)> {
    text.lines()
        .filter_map(|l| {
            let l = l.trim();
            if l.is_empty() || l.starts_with('[') || l.starts_with('#') {
                return None;
            }
            let (k, v) = l.split_once('=')?;
            Some((k.trim().to_string(), v.trim().to_string()))
        })
        .collect()
}

const EVENT_BYTES: u64 = 64;

fn write_synthetic_file(s: &FsSession, path: &str, bytes: u64) {
    let fd = s
        .open(path, OpenFlags::wronly().with_create().with_truncate())
        .expect("create synthetic file");
    // 8 MB I/O requests, the tfrecord writer's buffer size.
    let chunk = 8 << 20;
    let mut left = bytes;
    while left > 0 {
        let n = left.min(chunk);
        s.write_synthetic(fd, n).expect("write");
        left -= n;
    }
    s.close(fd).expect("close");
}

fn read_synthetic_file(s: &FsSession, path: &str) {
    let fd = s.open(path, OpenFlags::rdonly()).expect("open");
    let size = s.fs().stat(path).map(|m| m.size).unwrap_or(0);
    let chunk = 8 << 20;
    let mut off = 0;
    while off < size {
        let n = (size - off).min(chunk);
        s.pread(fd, off, n).expect("read");
        off += n;
    }
    s.close(fd).expect("close");
}

/// Run Top Reco once.
pub fn run(cluster: &Cluster, p: &TopRecoParams) -> TopRecoOutcome {
    let clock = VirtualClock::new();
    let pid = 1_000 + p.run_id;
    let root = format!("/topreco/run{}", p.run_id);
    let prov_dir = format!("{root}/provio");

    // Per-mode instrumentation handles.
    let provio_cfg = match &p.mode {
        ProvMode::ProvIo(cfg) => {
            let mut c = (**cfg).clone();
            c.store_dir = prov_dir.clone();
            c.workflow_type = Some("Machine Learning".to_string());
            Some(c.shared())
        }
        _ => None,
    };
    let (session, _h5) = cluster.process(pid, "alice", "topreco", clock.clone(), provio_cfg.as_ref());
    let api = provio_cfg.map(|_| {
        // `attach` already ran inside `process`; get the tracker back.
        ProvIoApi::new(cluster.registry.get(pid).expect("registered"))
    });
    let provlake = match &p.mode {
        ProvMode::ProvLake => Some(ProvLakeTracker::new(
            Arc::clone(&cluster.fs),
            format!("{root}/provlake/topreco.jsonl"),
            "topreco",
            p.run_id as u64,
            clock.clone(),
        )),
        _ => None,
    };

    session.fs().mkdir_all(&root, "alice", clock.now()).expect("mkdir");

    // 1. Configuration + input events.
    let hyper = hyperparameters(p.seed, p.n_configs);
    session
        .write_file(&format!("{root}/config.ini"), ini_text(&hyper).as_bytes())
        .expect("write config");
    write_synthetic_file(&session, &format!("{root}/events.root"), p.n_events * EVENT_BYTES);

    // Read the configuration back (what the real workflow does at start).
    let cfg_text = String::from_utf8(session.read_file(&format!("{root}/config.ini")).unwrap())
        .expect("utf8 config");
    let parsed = parse_ini(&cfg_text);
    debug_assert_eq!(parsed.len(), hyper.len());

    // Instrument: configuration recorded once at workflow start (§6.4).
    if let Some(api) = &api {
        for (k, v) in &parsed {
            api.track_configuration(k, v);
        }
    }
    if let Some(pl) = &provlake {
        for (k, v) in &parsed {
            pl.set_workflow_attribute(k, v);
        }
    }

    // 2. Generate the training and test datasets.
    read_synthetic_file(&session, &format!("{root}/events.root"));
    session.compute(SimDuration::from_secs_f64(
        p.n_events as f64 * 50e-9, // 50 ns/event preprocessing
    ));
    let train_bytes = p.n_events * EVENT_BYTES * 8 / 10;
    let test_bytes = p.n_events * EVENT_BYTES * 2 / 10;
    write_synthetic_file(&session, &format!("{root}/train.tfrecord"), train_bytes);
    write_synthetic_file(&session, &format!("{root}/test.tfrecord"), test_bytes);

    // 3. The training loop, instrumented at the end of every epoch.
    let mut curve = Vec::with_capacity(p.epochs as usize);
    for epoch in 0..p.epochs {
        read_synthetic_file(&session, &format!("{root}/train.tfrecord"));
        session.compute(p.epoch_compute);
        let acc = accuracy_at(p.seed, &hyper, epoch);
        curve.push(acc);
        if let Some(api) = &api {
            api.track_metric("training_accuracy", acc);
        }
        if let Some(pl) = &provlake {
            let t = pl.begin_task("train_epoch", epoch as u64);
            pl.task_output(t, "training_accuracy", &format!("{acc:.6}"));
            pl.end_task(t);
        }
    }

    // 4. Test + scores.
    read_synthetic_file(&session, &format!("{root}/test.tfrecord"));
    session.compute(SimDuration::from_secs_f64(
        p.epoch_compute.as_secs_f64() * 0.2,
    ));
    let mut scores = String::from("edge_id,score\n");
    let mut rng = DetRng::with_stream(p.seed, 0x5C0E);
    for i in 0..64 {
        let _ = writeln!(scores, "{i},{:.4}", rng.f64());
    }
    session
        .write_file(&format!("{root}/scores.csv"), scores.as_bytes())
        .expect("write scores");

    // 5. Reconstruction from the highest scores.
    let _ = session.read_file(&format!("{root}/scores.csv")).unwrap();
    session.compute(SimDuration::from_secs(2));
    write_synthetic_file(&session, &format!("{root}/reco.root"), 4 << 20);

    // Finish provenance.
    let (prov_bytes, prov_files, tracked_events) = match &p.mode {
        ProvMode::Off => (0, 0, 0),
        ProvMode::ProvIo(_) => {
            let tracker = cluster.registry.unregister(pid).expect("tracker");
            let summary = tracker.finish();
            let (bytes, files) = cluster.prov_usage(&prov_dir);
            debug_assert_eq!(bytes, summary.store_bytes);
            (bytes, files, summary.events)
        }
        ProvMode::ProvLake => {
            let pl = provlake.as_ref().expect("provlake mode");
            let bytes = pl.finish();
            (bytes, 1, pl.record_count())
        }
    };

    TopRecoOutcome {
        metrics: RunMetrics {
            completion: SimDuration::from_nanos(clock.now().as_nanos()),
            prov_bytes,
            prov_files,
            tracked_events,
        },
        final_accuracy: *curve.last().unwrap_or(&0.0),
        accuracy_curve: curve,
        prov_dir,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provio::ProvIoConfig;
    use provio_model::ClassSelector;

    fn quick(mode: ProvMode, run_id: u32) -> TopRecoOutcome {
        let cluster = Cluster::new();
        run(
            &cluster,
            &TopRecoParams {
                epochs: 5,
                n_configs: 8,
                n_events: 10_000,
                epoch_compute: SimDuration::from_secs(10),
                seed: 3,
                mode,
                run_id,
            },
        )
    }

    #[test]
    fn baseline_runs_and_is_deterministic() {
        let a = quick(ProvMode::Off, 0);
        let b = quick(ProvMode::Off, 0);
        assert_eq!(a.metrics.completion, b.metrics.completion);
        assert_eq!(a.accuracy_curve, b.accuracy_curve);
        assert!(a.metrics.completion.as_secs_f64() > 50.0);
        assert_eq!(a.metrics.prov_bytes, 0);
    }

    #[test]
    fn accuracy_curve_saturates_upward() {
        let o = quick(ProvMode::Off, 0);
        assert_eq!(o.accuracy_curve.len(), 5);
        assert!(o.final_accuracy > o.accuracy_curve[0]);
        assert!(o.final_accuracy < 1.0);
    }

    #[test]
    fn provio_overhead_is_small_and_positive() {
        let base = quick(ProvMode::Off, 0);
        let tracked = quick(
            ProvMode::provio(
                ProvIoConfig::default().with_selector(ClassSelector::topreco()),
            ),
            0,
        );
        let overhead = tracked.metrics.overhead_vs(&base.metrics);
        assert!(overhead > 0.0, "tracking costs something: {overhead}");
        assert!(overhead < 0.02, "but stays tiny: {overhead}");
        assert!(tracked.metrics.prov_bytes > 0);
        assert_eq!(tracked.metrics.prov_files, 1);
        // 8 configs + 5 accuracies tracked... as extensible records (not IoEvents).
        assert_eq!(tracked.accuracy_curve, base.accuracy_curve, "tracking must not perturb results");
    }

    #[test]
    fn provlake_tracks_same_points() {
        let pl = quick(ProvMode::ProvLake, 1);
        assert_eq!(pl.metrics.tracked_events, 5, "one step record per epoch");
        assert!(pl.metrics.prov_bytes > 0);
    }

    #[test]
    fn provlake_storage_exceeds_provio_for_same_workload() {
        // Figure 8(d-f): ProvLake stores more because every step record
        // duplicates the workflow context. Paper-scale parameters (20
        // configs, 20 epochs).
        let run_with = |mode: ProvMode, run_id| {
            let cluster = Cluster::new();
            run(
                &cluster,
                &TopRecoParams {
                    epochs: 20,
                    n_configs: 20,
                    n_events: 10_000,
                    epoch_compute: SimDuration::from_secs(10),
                    seed: 3,
                    mode,
                    run_id,
                },
            )
        };
        let pio = run_with(
            ProvMode::provio(
                ProvIoConfig::default().with_selector(ClassSelector::topreco()),
            ),
            2,
        );
        let pl = run_with(ProvMode::ProvLake, 3);
        assert!(
            pl.metrics.prov_bytes > pio.metrics.prov_bytes,
            "provlake {} <= provio {}",
            pl.metrics.prov_bytes,
            pio.metrics.prov_bytes
        );
    }

    #[test]
    fn hyperparameters_deterministic_and_sized() {
        let a = hyperparameters(5, 40);
        let b = hyperparameters(5, 40);
        assert_eq!(a, b);
        assert_eq!(a.len(), 40);
        // Distinct names.
        let names: std::collections::HashSet<&String> = a.iter().map(|(k, _)| k).collect();
        assert_eq!(names.len(), 40);
    }

    #[test]
    fn ini_round_trip() {
        let h = hyperparameters(1, 10);
        let parsed = parse_ini(&ini_text(&h));
        assert_eq!(parsed, h);
    }
}
