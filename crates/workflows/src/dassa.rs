//! The DASSA workflow (paper §1.1, §3.2, Figure 1): parallel analysis of
//! distributed acoustic sensing data.
//!
//! Pipeline reproduced from the paper: geophysical `.tdms` inputs are
//! converted to HDF5 by `tdms2h5`, then analysis programs (`decimate`,
//! `xcorr_stack`) produce data products. Multi-program, multi-file, mixed
//! POSIX + HDF5 I/O, and heavily attribute-dependent — "to access an
//! attribute, the program first needs to open the file and the dataset
//! containing it, which incurs more I/O operations to track" (§6.2); the
//! decimate phase reproduces exactly that access pattern.
//!
//! Files are processed in parallel on `nodes` virtual nodes (the paper uses
//! 32), one conversion/analysis *process* per node per phase, so per-node
//! provenance lands in per-process sub-graphs like on a real deployment.

use crate::cluster::Cluster;
use crate::metrics::{ProvMode, RunMetrics};
use provio_hdf5::{Data, Dataspace, Datatype, Handle, Hyperslab, H5};
use provio_hpcfs::{FsSession, OpenFlags};
use provio_mpi::{MpiWorld, RankOutcome};
use provio_simrt::{SimDuration, VirtualClock};
use std::sync::Arc;

/// Run parameters.
#[derive(Clone)]
pub struct DassaParams {
    /// Number of `.tdms` input files (128..2048 in Figure 6(b)/7(b)).
    pub n_files: usize,
    /// Virtual compute nodes (the paper uses 32).
    pub nodes: u32,
    /// Size of each input file in MiB (the paper's 2048 files total
    /// 1.35 TB ≈ 675 MiB each).
    pub file_mib: u64,
    /// DAS channels per file — each channel contributes one HDF5 attribute
    /// (DASSA is attribute-heavy).
    pub channels: usize,
    /// Datasets per converted file.
    pub datasets: usize,
    pub seed: u64,
    pub mode: ProvMode,
}

impl Default for DassaParams {
    fn default() -> Self {
        DassaParams {
            n_files: 128,
            nodes: 32,
            file_mib: 675,
            channels: 96,
            datasets: 4,
            seed: 11,
            mode: ProvMode::Off,
        }
    }
}

/// Run outcome.
#[derive(Debug, Clone)]
pub struct DassaOutcome {
    pub metrics: RunMetrics,
    /// Final data products (one xcorr stack per node).
    pub products: Vec<String>,
    pub prov_dir: String,
}

/// Modeled analysis compute per file and phase (DAS signal processing of
/// hundreds of MB per file costs seconds of CPU).
fn convert_compute(p: &DassaParams) -> SimDuration {
    SimDuration::from_secs_f64(3.0 * p.file_mib as f64 / 675.0)
}

fn decimate_compute(p: &DassaParams) -> SimDuration {
    SimDuration::from_secs_f64(4.0 * p.file_mib as f64 / 675.0)
}

fn xcorr_compute(p: &DassaParams) -> SimDuration {
    SimDuration::from_secs_f64(2.0 * p.file_mib as f64 / 675.0)
}

fn tdms_path(i: usize) -> String {
    format!("/dassa/raw/WestSac_{i:04}.tdms")
}

fn h5_path(i: usize) -> String {
    format!("/dassa/convert/WestSac_{i:04}.h5")
}

fn decimate_path(i: usize) -> String {
    format!("/dassa/products/decimate_{i:04}.h5")
}

fn stack_path(node: u32) -> String {
    format!("/dassa/products/xcorr_stack_n{node:02}.h5")
}

/// Generate the raw sensor inputs (not part of the tracked workflow — the
/// interrogator wrote these).
fn generate_inputs(fs: &Arc<provio_hpcfs::FileSystem>, p: &DassaParams) {
    let boot = FsSession::new(
        Arc::clone(fs),
        1,
        "das-interrogator",
        "sensor",
        VirtualClock::new(),
        provio_hpcfs::Dispatcher::new(),
    );
    boot.fs().mkdir_all("/dassa/raw", "das", boot.clock().now()).unwrap();
    boot.fs()
        .mkdir_all("/dassa/convert", "das", boot.clock().now())
        .unwrap();
    boot.fs()
        .mkdir_all("/dassa/products", "das", boot.clock().now())
        .unwrap();
    for i in 0..p.n_files {
        let path = tdms_path(i);
        let fd = boot
            .open(&path, OpenFlags::wronly().with_create().with_truncate())
            .unwrap();
        boot.write_synthetic(fd, p.file_mib << 20).unwrap();
        boot.close(fd).unwrap();
        boot.setxattr(&path, "user.sample_rate_hz", b"500").unwrap();
        boot.setxattr(&path, "user.gauge_length_m", b"10").unwrap();
    }
}

/// One process slot: session + HDF5 handle, tracked per `mode`.
fn process_for(
    cluster: &Cluster,
    p: &DassaParams,
    prov_dir: &str,
    pid: u32,
    program: &str,
    clock: VirtualClock,
) -> (Arc<FsSession>, H5) {
    let cfg = match &p.mode {
        ProvMode::ProvIo(c) => {
            let mut c = (**c).clone();
            c.store_dir = prov_dir.to_string();
            c.workflow_type = Some("Acoustic Sensing".to_string());
            Some(c.shared())
        }
        _ => None,
    };
    cluster.process(pid, "UserA", program, clock, cfg.as_ref())
}

/// Phase 1 — tdms2h5: read each `.tdms` (POSIX), write a `.h5` with
/// groups, datasets and per-channel attributes.
fn tdms2h5(s: &FsSession, h5: &H5, p: &DassaParams, i: usize) {
    // POSIX read of the raw file in 64 MiB requests.
    let raw = tdms_path(i);
    let fd = s.open(&raw, OpenFlags::rdonly()).unwrap();
    let size = s.fs().stat(&raw).unwrap().size;
    let mut off = 0;
    while off < size {
        let n = (size - off).min(64 << 20);
        s.pread(fd, off, n).unwrap();
        off += n;
    }
    s.getxattr(&raw, "user.sample_rate_hz").unwrap();
    s.getxattr(&raw, "user.gauge_length_m").unwrap();
    s.close(fd).unwrap();

    s.compute(convert_compute(p));

    // HDF5 output: /dast group, `datasets` datasets, one attribute per
    // channel spread round-robin over the datasets.
    let f = h5.create_file(&h5_path(i)).unwrap();
    let g = h5.create_group(f, "dast").unwrap();
    let per_dataset = (p.file_mib << 20) / p.datasets as u64;
    let mut dsets: Vec<Handle> = Vec::with_capacity(p.datasets);
    for d in 0..p.datasets {
        let n_elems = per_dataset / 8;
        let dset = h5
            .create_dataset(
                g,
                &format!("channel_block_{d}"),
                Datatype::Float64,
                Dataspace::fixed(&[n_elems]),
            )
            .unwrap();
        h5.write(
            dset,
            &Hyperslab::new(&[0], &[n_elems]),
            &Data::synthetic(per_dataset),
        )
        .unwrap();
        dsets.push(dset);
    }
    for c in 0..p.channels {
        let dset = dsets[c % p.datasets.max(1)];
        h5.create_attr(
            dset,
            &format!("channel_{c:03}_meta"),
            Datatype::FixedString(32),
            format!("pos={};sr=500", c * 10).as_bytes(),
        )
        .unwrap();
    }
    for d in dsets {
        h5.close_dataset(d).unwrap();
    }
    h5.close_group(g).unwrap();
    h5.flush(f).unwrap();
    h5.close_file(f).unwrap();
}

/// Phase 2 — decimate: the attribute-heavy consumer. For every channel
/// attribute it re-opens the file and the containing dataset (the paper's
/// observation about attribute access), then reads and decimates the data.
fn decimate(s: &FsSession, h5: &H5, p: &DassaParams, i: usize) {
    let src = h5_path(i);
    // Attribute sweep: file → dataset → attribute per channel.
    for c in 0..p.channels {
        let f = h5.open_file(&src, false).unwrap();
        let dset = h5
            .open_dataset(f, &format!("dast/channel_block_{}", c % p.datasets.max(1)))
            .unwrap();
        let a = h5.open_attr(dset, &format!("channel_{c:03}_meta")).unwrap();
        h5.read_attr(a).unwrap();
        h5.close_attr(a).unwrap();
        h5.close_dataset(dset).unwrap();
        h5.close_file(f).unwrap();
    }

    // Bulk read + decimate (1:8) + write product.
    let f = h5.open_file(&src, false).unwrap();
    let out = h5.create_file(&decimate_path(i)).unwrap();
    let og = h5.create_group(out, "decimated").unwrap();
    for d in 0..p.datasets {
        let dset = h5.open_dataset(f, &format!("dast/channel_block_{d}")).unwrap();
        let info = h5.object_info(dset).unwrap();
        let n = info.dims.unwrap()[0];
        h5.read(dset, &Hyperslab::new(&[0], &[n])).unwrap();
        h5.close_dataset(dset).unwrap();

        let dn = (n / 8).max(1);
        let od = h5
            .create_dataset(
                og,
                &format!("channel_block_{d}"),
                Datatype::Float64,
                Dataspace::fixed(&[dn]),
            )
            .unwrap();
        h5.write(od, &Hyperslab::new(&[0], &[dn]), &Data::synthetic(dn * 8))
            .unwrap();
        h5.close_dataset(od).unwrap();
    }
    s.compute(decimate_compute(p));
    h5.create_attr(
        out,
        "source_file",
        Datatype::VarString,
        src.as_bytes(),
    )
    .unwrap();
    h5.close_group(og).unwrap();
    h5.flush(out).unwrap();
    h5.close_file(out).unwrap();
    h5.close_file(f).unwrap();
}

/// Phase 3 — xcorr_stack: each node stacks its decimated files into one
/// product.
fn xcorr_stack(s: &FsSession, h5: &H5, p: &DassaParams, node: u32, files: &[usize]) {
    let out = h5.create_file(&stack_path(node)).unwrap();
    let total: u64 = 1 << 20; // stacked correlation function, 1 MiB
    let od = h5
        .create_dataset(out, "xcorr", Datatype::Float64, Dataspace::fixed(&[total / 8]))
        .unwrap();
    for &i in files {
        let f = h5.open_file(&decimate_path(i), false).unwrap();
        for d in 0..p.datasets {
            let dset = h5
                .open_dataset(f, &format!("decimated/channel_block_{d}"))
                .unwrap();
            let info = h5.object_info(dset).unwrap();
            let n = info.dims.unwrap()[0];
            h5.read(dset, &Hyperslab::new(&[0], &[n])).unwrap();
            h5.close_dataset(dset).unwrap();
        }
        h5.close_file(f).unwrap();
        s.compute(xcorr_compute(p));
    }
    h5.write(
        od,
        &Hyperslab::new(&[0], &[total / 8]),
        &Data::synthetic(total),
    )
    .unwrap();
    h5.close_dataset(od).unwrap();
    h5.flush(out).unwrap();
    h5.close_file(out).unwrap();
}

/// Run DASSA once.
pub fn run(cluster: &Cluster, p: &DassaParams) -> DassaOutcome {
    let prov_dir = "/dassa/provio".to_string();
    generate_inputs(&cluster.fs, p);

    let world = MpiWorld::new(p.nodes);
    let files_of = |rank: u32| -> Vec<usize> {
        (0..p.n_files)
            .filter(|i| (i % p.nodes as usize) as u32 == rank)
            .collect()
    };

    // Phase 1: conversion, one tdms2h5 process per node.
    world.superstep_named("tdms2h5", |ctx| {
        let pid = 2_000 + ctx.rank;
        let (s, h5) = process_for(cluster, p, &prov_dir, pid, "tdms2h5", ctx.clock().clone());
        for i in files_of(ctx.rank) {
            tdms2h5(&s, &h5, p, i);
        }
    });

    // Phase 2: decimation.
    world.superstep_named("decimate", |ctx| {
        let pid = 3_000 + ctx.rank;
        let (s, h5) = process_for(cluster, p, &prov_dir, pid, "decimate", ctx.clock().clone());
        for i in files_of(ctx.rank) {
            decimate(&s, &h5, p, i);
        }
    });

    // Phase 3: cross-correlation stacking.
    let products: Vec<String> = world
        .superstep_named("xcorr_stack", |ctx| {
            let pid = 4_000 + ctx.rank;
            let (s, h5) =
                process_for(cluster, p, &prov_dir, pid, "xcorr_stack", ctx.clock().clone());
            let files = files_of(ctx.rank);
            if files.is_empty() {
                return None;
            }
            xcorr_stack(&s, &h5, p, ctx.rank, &files);
            Some(stack_path(ctx.rank))
        })
        .into_iter()
        .filter_map(RankOutcome::completed)
        .flatten()
        .collect();

    // Finish provenance for all phase processes.
    let (prov_bytes, prov_files, tracked_events) = if p.mode.is_off() {
        (0, 0, 0)
    } else {
        let summaries = cluster.registry.finish_all();
        let events = summaries.iter().map(|(_, s)| s.events).sum();
        for (pid, _) in &summaries {
            cluster.registry.unregister(*pid);
        }
        let (bytes, files) = cluster.prov_usage(&prov_dir);
        (bytes, files, events)
    };

    DassaOutcome {
        metrics: RunMetrics {
            completion: world.elapsed(),
            prov_bytes,
            prov_files,
            tracked_events,
        },
        products,
        prov_dir,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provio::ProvIoConfig;
    use provio_model::ClassSelector;

    fn small(mode: ProvMode) -> (Cluster, DassaOutcome) {
        let cluster = Cluster::new();
        let out = run(
            &cluster,
            &DassaParams {
                n_files: 8,
                nodes: 4,
                // Paper-scale file size: the bytes are synthetic (metadata
                // only), so the test stays fast while the compute/track
                // cost ratio matches the real deployment.
                file_mib: 675,
                channels: 24,
                datasets: 2,
                seed: 1,
                mode,
            },
        );
        (cluster, out)
    }

    #[test]
    fn baseline_produces_products() {
        let (cluster, out) = small(ProvMode::Off);
        assert_eq!(out.products.len(), 4);
        for prod in &out.products {
            assert!(cluster.fs.exists(prod), "{prod} missing");
        }
        assert!(out.metrics.completion.as_secs_f64() > 1.0);
        assert_eq!(out.metrics.prov_bytes, 0);
    }

    #[test]
    fn deterministic_baseline() {
        let (_, a) = small(ProvMode::Off);
        let (_, b) = small(ProvMode::Off);
        assert_eq!(a.metrics.completion, b.metrics.completion);
    }

    #[test]
    fn lineage_granularity_orders_overhead_and_events() {
        let (_, base) = small(ProvMode::Off);
        let run_with = |sel: ClassSelector| {
            let (_, o) = small(ProvMode::provio(
                ProvIoConfig::default().with_selector(sel),
            ));
            o
        };
        let file = run_with(ClassSelector::dassa_file_lineage());
        let dataset = run_with(ClassSelector::dassa_dataset_lineage());
        let attr = run_with(ClassSelector::dassa_attribute_lineage());

        assert!(file.metrics.tracked_events < dataset.metrics.tracked_events);
        assert!(dataset.metrics.tracked_events < attr.metrics.tracked_events);

        let oh_file = file.metrics.overhead_vs(&base.metrics);
        let oh_dataset = dataset.metrics.overhead_vs(&base.metrics);
        let oh_attr = attr.metrics.overhead_vs(&base.metrics);
        assert!(oh_file > 0.0);
        assert!(oh_file < oh_dataset, "{oh_file} vs {oh_dataset}");
        assert!(oh_dataset < oh_attr, "{oh_dataset} vs {oh_attr}");
        // The paper's range: ~1.8%–11%.
        assert!(oh_attr < 0.25, "attribute overhead sane: {oh_attr}");
        assert!(oh_file < 0.08, "file overhead sane: {oh_file}");
    }

    #[test]
    fn provenance_files_per_process() {
        let (_, out) = small(ProvMode::provio(
            ProvIoConfig::default().with_selector(ClassSelector::dassa_file_lineage()),
        ));
        // 3 phases × 4 nodes = 12 tracked processes.
        assert_eq!(out.metrics.prov_files, 12);
        assert!(out.metrics.prov_bytes > 0);
    }

    #[test]
    fn backward_lineage_recoverable_from_provenance() {
        let (cluster, out) = small(ProvMode::provio(
            ProvIoConfig::default().with_selector(ClassSelector::dassa_file_lineage()),
        ));
        let (graph, report) = provio::merge_directory(&cluster.fs, &out.prov_dir);
        assert!(report.corrupt.is_empty());
        let mut eng = provio::ProvQueryEngine::new(graph);
        eng.derive_lineage();
        // The decimate product derives (transitively) from the raw .tdms.
        let product = eng
            .entity_by_label("/dassa/products/decimate_0000.h5")
            .expect("product tracked");
        let lineage = eng.backward_lineage(&product);
        let labels: Vec<String> = lineage
            .iter()
            .filter_map(|g| eng.label_of(g))
            .collect();
        assert!(
            labels.iter().any(|l| l.contains("WestSac_0000.tdms")),
            "lineage {labels:?}"
        );
    }
}
