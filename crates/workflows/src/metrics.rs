//! Common run description and result types.

use provio::ProvIoConfig;
use provio_simrt::SimDuration;
use std::sync::Arc;

/// How a workflow run is instrumented.
#[derive(Clone)]
pub enum ProvMode {
    /// No provenance (the grey baseline bars).
    Off,
    /// PROV-IO with the given configuration (selector preset etc.).
    ProvIo(Arc<ProvIoConfig>),
    /// The ProvLake baseline (Top Reco only — ProvLake has no C/C++
    /// support, paper §6.4).
    ProvLake,
}

impl ProvMode {
    pub fn provio(cfg: ProvIoConfig) -> Self {
        ProvMode::ProvIo(cfg.shared())
    }

    pub fn is_off(&self) -> bool {
        matches!(self, ProvMode::Off)
    }

    pub fn name(&self) -> &'static str {
        match self {
            ProvMode::Off => "baseline",
            ProvMode::ProvIo(_) => "prov-io",
            ProvMode::ProvLake => "provlake",
        }
    }
}

/// What every workflow run reports.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Virtual completion time (max over all participating ranks/nodes).
    pub completion: SimDuration,
    /// Total provenance bytes on the parallel file system.
    pub prov_bytes: u64,
    /// Number of per-process provenance files.
    pub prov_files: usize,
    /// Total tracked I/O events across processes.
    pub tracked_events: u64,
}

impl RunMetrics {
    /// Relative overhead of this run vs. `baseline` completion time.
    pub fn overhead_vs(&self, baseline: &RunMetrics) -> f64 {
        let b = baseline.completion.as_secs_f64();
        if b == 0.0 {
            return 0.0;
        }
        (self.completion.as_secs_f64() - b) / b
    }

    /// Normalized completion time (baseline = 1.0).
    pub fn normalized_vs(&self, baseline: &RunMetrics) -> f64 {
        1.0 + self.overhead_vs(baseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_math() {
        let base = RunMetrics {
            completion: SimDuration::from_secs(100),
            prov_bytes: 0,
            prov_files: 0,
            tracked_events: 0,
        };
        let tracked = RunMetrics {
            completion: SimDuration::from_secs(103),
            prov_bytes: 1024,
            prov_files: 4,
            tracked_events: 99,
        };
        assert!((tracked.overhead_vs(&base) - 0.03).abs() < 1e-9);
        assert!((tracked.normalized_vs(&base) - 1.03).abs() < 1e-9);
    }

    #[test]
    fn mode_names() {
        assert_eq!(ProvMode::Off.name(), "baseline");
        assert!(ProvMode::Off.is_off());
        assert_eq!(ProvMode::ProvLake.name(), "provlake");
        assert_eq!(
            ProvMode::provio(ProvIoConfig::default()).name(),
            "prov-io"
        );
    }
}
