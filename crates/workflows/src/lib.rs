//! `provio-workflows` — the three evaluation workflows (paper §3, §6),
//! rebuilt as synthetic but behaviorally faithful drivers over the
//! simulated substrates:
//!
//! * [`topreco`] — the ML workflow (§3.1): `.ini` configuration + `.root`
//!   events → `.tfrecord` train/test sets → GNN training epochs with a
//!   deterministic accuracy curve → scores → reconstruction. Pure POSIX
//!   I/O, single process, instrumentable with PROV-IO's explicit APIs or
//!   with the ProvLake baseline at identical points (§6.4).
//! * [`dassa`] — the DAS analysis workflow (§3.2): `.tdms` inputs →
//!   `tdms2h5` conversion → `decimate` / `xcorr_stack` data products.
//!   HDF5 + POSIX, multi-program, multi-file, attribute-heavy, parallel
//!   over files on 32 virtual nodes.
//! * [`h5bench`] — the synthetic I/O workflow (§3.3): vpic-style timestep
//!   datasets in one shared HDF5 file accessed by up to 4096 MPI ranks
//!   under three patterns (write+read, write+overwrite+read,
//!   write+append+read) with 25 s of modeled compute per step.
//!
//! Every driver runs with provenance off (baseline) or on (a Table 3
//! selector preset), returns completion time + provenance size, and leaves
//! the file system available for querying — which is all the experiment
//! harness in `provio-bench` needs to regenerate the paper's figures.

pub mod cluster;
pub mod dassa;
pub mod h5bench;
pub mod metrics;
pub mod topreco;

pub use cluster::Cluster;
pub use metrics::{ProvMode, RunMetrics};
