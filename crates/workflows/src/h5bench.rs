//! The H5bench-based workflow (paper §3.3, §6.2): vpic-style particle I/O
//! on one shared HDF5 file from many MPI ranks.
//!
//! Reproduces the paper's setup: a combination of write / overwrite /
//! append / read workloads under three I/O patterns (write+read,
//! write+overwrite+read, write+append+read), a "relatively modest
//! computation time of 25 seconds per step", eight particle variables per
//! timestep (x, y, z, px, py, pz, id1, id2 — the vpic schema), and rank
//! counts from 128 to 4096 (2 to 64 for the append pattern, which
//! "can easily overwhelm the memory buffer" at scale).

use crate::cluster::Cluster;
use crate::metrics::{ProvMode, RunMetrics};
use provio_hdf5::{Data, Dataspace, Datatype, Hyperslab, H5};
use provio_mpi::MpiWorld;
use provio_simrt::{SimDuration, VirtualClock};

/// The vpic particle variables.
pub const VPIC_VARS: [&str; 8] = ["x", "y", "z", "px", "py", "pz", "id1", "id2"];

/// The three evaluated I/O patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoPattern {
    WriteRead,
    WriteOverwriteRead,
    WriteAppendRead,
}

impl IoPattern {
    pub const ALL: [IoPattern; 3] = [
        IoPattern::WriteRead,
        IoPattern::WriteOverwriteRead,
        IoPattern::WriteAppendRead,
    ];

    pub fn name(self) -> &'static str {
        match self {
            IoPattern::WriteRead => "write+read",
            IoPattern::WriteOverwriteRead => "write+overwrite+read",
            IoPattern::WriteAppendRead => "write+append+read",
        }
    }
}

/// Run parameters.
#[derive(Clone)]
pub struct H5benchParams {
    pub ranks: u32,
    pub pattern: IoPattern,
    /// Timesteps.
    pub steps: u32,
    /// Particles per rank per timestep (each particle is 8 vars × 8 bytes).
    pub particles_per_rank: u64,
    /// H5Dwrite/H5Dread calls per dataset per rank (request blocking).
    pub blocks: u32,
    /// Modeled compute per step (paper: 25 s).
    pub compute_per_step: SimDuration,
    pub seed: u64,
    pub mode: ProvMode,
}

impl Default for H5benchParams {
    fn default() -> Self {
        H5benchParams {
            ranks: 128,
            pattern: IoPattern::WriteRead,
            steps: 3,
            particles_per_rank: 1 << 17, // 128 Ki particles → 8 MiB/var/rank… ×8 vars
            blocks: 4,
            compute_per_step: SimDuration::from_secs(25),
            seed: 5,
            mode: ProvMode::Off,
        }
    }
}

/// Run outcome.
#[derive(Debug, Clone)]
pub struct H5benchOutcome {
    pub metrics: RunMetrics,
    /// Total bytes moved through dataset writes+reads (all ranks).
    pub data_bytes: u64,
    pub prov_dir: String,
}

const FILE: &str = "/h5bench/vpic.h5";

fn step_group(step: u32) -> String {
    format!("Timestep_{step}")
}

fn rank_process(
    cluster: &Cluster,
    p: &H5benchParams,
    prov_dir: &str,
    rank: u32,
    clock: VirtualClock,
) -> (std::sync::Arc<provio_hpcfs::FsSession>, H5) {
    let cfg = match &p.mode {
        ProvMode::ProvIo(c) => {
            let mut c = (**c).clone();
            c.store_dir = prov_dir.to_string();
            c.workflow_type = Some("Synthetic".to_string());
            Some(c.shared())
        }
        _ => None,
    };
    cluster.process(5_000 + rank, "Bob", "vpicio_uni_h5", clock, cfg.as_ref())
}

/// Write (or overwrite) each variable's slab for `step`.
fn write_slabs(h5: &H5, p: &H5benchParams, rank: u32, step: u32, extended_base: u64) {
    let f = h5.open_file(FILE, true).expect("open shared file");
    let per_rank = p.particles_per_rank;
    for var in VPIC_VARS {
        let d = h5
            .open_dataset(f, &format!("{}/{var}", step_group(step)))
            .expect("dataset exists");
        let start = extended_base + rank as u64 * per_rank;
        let block = (per_rank / p.blocks as u64).max(1);
        let mut off = 0;
        while off < per_rank {
            let n = block.min(per_rank - off);
            h5.write(
                d,
                &Hyperslab::new(&[start + off], &[n]),
                &Data::synthetic(n * 8),
            )
            .expect("slab write");
            off += n;
        }
        h5.close_dataset(d).unwrap();
    }
    h5.close_file(f).unwrap();
}

/// Read back each variable's slab for `step`.
fn read_slabs(h5: &H5, p: &H5benchParams, rank: u32, step: u32) {
    let f = h5.open_file(FILE, false).expect("open shared file");
    let per_rank = p.particles_per_rank;
    for var in VPIC_VARS {
        let d = h5
            .open_dataset(f, &format!("{}/{var}", step_group(step)))
            .expect("dataset exists");
        let start = rank as u64 * per_rank;
        let block = (per_rank / p.blocks as u64).max(1);
        let mut off = 0;
        while off < per_rank {
            let n = block.min(per_rank - off);
            h5.read(d, &Hyperslab::new(&[start + off], &[n])).expect("slab read");
            off += n;
        }
        h5.close_dataset(d).unwrap();
    }
    h5.close_file(f).unwrap();
}

/// Run the workflow once.
pub fn run(cluster: &Cluster, p: &H5benchParams) -> H5benchOutcome {
    assert!(p.ranks >= 1);
    let prov_dir = "/h5bench/provio".to_string();
    let world = MpiWorld::new(p.ranks);

    // Boot: rank 0 creates the shared file and all step datasets
    // (extendable along dim 0 for the append pattern).
    world.superstep_named("boot", |ctx| {
        if ctx.rank != 0 {
            return;
        }
        let (s, h5) = rank_process(cluster, p, &prov_dir, 0, ctx.clock().clone());
        s.fs().mkdir_all("/h5bench", "Bob", ctx.clock().now()).unwrap();
        let f = h5.create_file(FILE).expect("create shared file");
        let total = p.ranks as u64 * p.particles_per_rank;
        for step in 0..p.steps {
            let g = h5.create_group(f, &step_group(step)).expect("group");
            for var in VPIC_VARS {
                let space = Dataspace::with_max(&[total], &[None]).expect("space");
                let d = h5
                    .create_dataset(g, var, Datatype::Float64, space)
                    .expect("dataset");
                h5.close_dataset(d).unwrap();
            }
            h5.close_group(g).unwrap();
        }
        h5.flush(f).unwrap();
        h5.close_file(f).unwrap();
    });

    // The per-step phases. Each rank is a tracked process for the whole
    // run; per-rank H5 handles are recreated per superstep (cheap) while
    // the tracker persists in the registry keyed by pid.
    for step in 0..p.steps {
        // Write phase.
        world.superstep_named("write", |ctx| {
            let (_s, h5) = rank_process(cluster, p, &prov_dir, ctx.rank, ctx.clock().clone());
            ctx.compute(p.compute_per_step);
            write_slabs(&h5, p, ctx.rank, step, 0);
        });

        match p.pattern {
            IoPattern::WriteRead => {}
            IoPattern::WriteOverwriteRead => {
                // Overwrite: a second full write pass over the same slabs
                // (a new version of the dataset).
                world.superstep_named("overwrite", |ctx| {
                    let (_s, h5) =
                        rank_process(cluster, p, &prov_dir, ctx.rank, ctx.clock().clone());
                    ctx.compute(p.compute_per_step);
                    write_slabs(&h5, p, ctx.rank, step, 0);
                });
            }
            IoPattern::WriteAppendRead => {
                // Append: extend every dataset by one more rank-slab region
                // and write into the new region. Determining the append
                // offset and memory range costs extra computation (§6.2).
                world.superstep_named("append-extend", |ctx| {
                    let (_s, h5) =
                        rank_process(cluster, p, &prov_dir, ctx.rank, ctx.clock().clone());
                    ctx.compute(p.compute_per_step);
                    ctx.compute(SimDuration::from_secs_f64(
                        p.compute_per_step.as_secs_f64(),
                    ));
                    let total = p.ranks as u64 * p.particles_per_rank;
                    if ctx.rank == 0 {
                        let f = h5.open_file(FILE, true).unwrap();
                        for var in VPIC_VARS {
                            let d = h5
                                .open_dataset(f, &format!("{}/{var}", step_group(step)))
                                .unwrap();
                            h5.extend_dataset(d, &[2 * total]).unwrap();
                            h5.close_dataset(d).unwrap();
                        }
                        h5.close_file(f).unwrap();
                    }
                });
                world.superstep_named("append-write", |ctx| {
                    let (_s, h5) =
                        rank_process(cluster, p, &prov_dir, ctx.rank, ctx.clock().clone());
                    let total = p.ranks as u64 * p.particles_per_rank;
                    write_slabs(&h5, p, ctx.rank, step, total);
                });
            }
        }

        // Read phase.
        world.superstep_named("read", |ctx| {
            let (_s, h5) = rank_process(cluster, p, &prov_dir, ctx.rank, ctx.clock().clone());
            read_slabs(&h5, p, ctx.rank, step);
        });
    }

    // Flush the shared file once at the end (rank 0).
    world.superstep_named("final-flush", |ctx| {
        if ctx.rank != 0 {
            return;
        }
        let (_s, h5) = rank_process(cluster, p, &prov_dir, 0, ctx.clock().clone());
        let f = h5.open_file(FILE, true).unwrap();
        h5.flush(f).unwrap();
        h5.close_file(f).unwrap();
    });

    let (prov_bytes, prov_files, tracked_events) = if p.mode.is_off() {
        (0, 0, 0)
    } else {
        let summaries = cluster.registry.finish_all();
        let events = summaries.iter().map(|(_, s)| s.events).sum();
        for (pid, _) in &summaries {
            cluster.registry.unregister(*pid);
        }
        let (bytes, files) = cluster.prov_usage(&prov_dir);
        (bytes, files, events)
    };

    let writes_per_step: u64 = match p.pattern {
        IoPattern::WriteRead => 1,
        IoPattern::WriteOverwriteRead | IoPattern::WriteAppendRead => 2,
    };
    let data_bytes = p.ranks as u64
        * p.particles_per_rank
        * 8
        * VPIC_VARS.len() as u64
        * p.steps as u64
        * (writes_per_step + 1); // + read pass

    H5benchOutcome {
        metrics: RunMetrics {
            completion: world.elapsed(),
            prov_bytes,
            prov_files,
            tracked_events,
        },
        data_bytes,
        prov_dir,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use provio::ProvIoConfig;
    use provio_model::ClassSelector;

    fn small(ranks: u32, pattern: IoPattern, mode: ProvMode) -> (Cluster, H5benchOutcome) {
        let cluster = Cluster::new();
        let out = run(
            &cluster,
            &H5benchParams {
                ranks,
                pattern,
                steps: 2,
                particles_per_rank: 1 << 12,
                blocks: 2,
                compute_per_step: SimDuration::from_secs(25),
                seed: 1,
                mode,
            },
        );
        (cluster, out)
    }

    #[test]
    fn baseline_runs_all_patterns() {
        for pattern in IoPattern::ALL {
            let (cluster, out) = small(4, pattern, ProvMode::Off);
            assert!(out.metrics.completion.as_secs_f64() >= 50.0, "{pattern:?}");
            assert!(cluster.fs.exists(FILE));
            assert_eq!(out.metrics.prov_bytes, 0);
        }
    }

    #[test]
    fn patterns_order_baseline_time() {
        let (_, wr) = small(4, IoPattern::WriteRead, ProvMode::Off);
        let (_, wor) = small(4, IoPattern::WriteOverwriteRead, ProvMode::Off);
        let (_, war) = small(4, IoPattern::WriteAppendRead, ProvMode::Off);
        assert!(wor.metrics.completion > wr.metrics.completion);
        assert!(war.metrics.completion > wor.metrics.completion, "append has extra compute");
    }

    #[test]
    fn scenarios_track_and_overheads_are_modest() {
        let (_, base) = small(4, IoPattern::WriteRead, ProvMode::Off);
        let mut overheads = Vec::new();
        for sel in [
            ClassSelector::h5bench_scenario1(),
            ClassSelector::h5bench_scenario2(),
            ClassSelector::h5bench_scenario3(),
        ] {
            let (_, o) = small(
                4,
                IoPattern::WriteRead,
                ProvMode::provio(ProvIoConfig::default().with_selector(sel)),
            );
            assert!(o.metrics.tracked_events > 0);
            assert!(o.metrics.prov_bytes > 0);
            let oh = o.metrics.overhead_vs(&base.metrics);
            assert!(oh > 0.0 && oh < 0.10, "overhead {oh}");
            overheads.push(oh);
        }
        // Scenario 3 (file-level only) tracks fewer events than 1/2.
        assert!(overheads[2] <= overheads[0] + 1e-9);
    }

    #[test]
    fn append_pattern_has_lowest_relative_overhead() {
        let mode = || {
            ProvMode::provio(
                ProvIoConfig::default().with_selector(ClassSelector::h5bench_scenario2()),
            )
        };
        let (_, wr_base) = small(2, IoPattern::WriteRead, ProvMode::Off);
        let (_, wr) = small(2, IoPattern::WriteRead, mode());
        let (_, war_base) = small(2, IoPattern::WriteAppendRead, ProvMode::Off);
        let (_, war) = small(2, IoPattern::WriteAppendRead, mode());
        let oh_wr = wr.metrics.overhead_vs(&wr_base.metrics);
        let oh_war = war.metrics.overhead_vs(&war_base.metrics);
        assert!(
            oh_war < oh_wr,
            "append {oh_war} should be below write+read {oh_wr}"
        );
    }

    #[test]
    fn per_rank_subgraphs() {
        let (_, out) = small(
            4,
            IoPattern::WriteRead,
            ProvMode::provio(
                ProvIoConfig::default().with_selector(ClassSelector::h5bench_scenario3()),
            ),
        );
        assert_eq!(out.metrics.prov_files, 4);
    }

    #[test]
    fn storage_scales_with_ranks() {
        let mode = || {
            ProvMode::provio(
                ProvIoConfig::default().with_selector(ClassSelector::h5bench_scenario2()),
            )
        };
        let (_, r2) = small(2, IoPattern::WriteRead, mode());
        let (_, r8) = small(8, IoPattern::WriteRead, mode());
        assert!(r8.metrics.prov_bytes > 3 * r2.metrics.prov_bytes);
    }

    #[test]
    fn streamed_run_converges_to_post_hoc_merge() {
        use std::sync::Arc;
        let cluster = Cluster::new();
        // A hostile fabric: 25% loss/dup/reorder on every link. At-least-once
        // delivery plus (rank, seq) dedup must still converge the live graph
        // to exactly the post-hoc merge of the rank files.
        let collector = provio::Collector::new(
            Arc::clone(&cluster.fs),
            "/h5bench/provio",
            provio_simrt::NetPlan::hostile(11, 0.25),
        );
        cluster.stream_to(Arc::clone(&collector));
        let out = run(
            &cluster,
            &H5benchParams {
                ranks: 2,
                pattern: IoPattern::WriteRead,
                steps: 2,
                particles_per_rank: 1 << 10,
                blocks: 2,
                compute_per_step: SimDuration::from_secs(25),
                seed: 1,
                mode: ProvMode::provio(
                    ProvIoConfig::default()
                        .with_selector(ClassSelector::h5bench_scenario2())
                        .with_wal(true, 16)
                        .with_net(true, 1_000_000),
                ),
            },
        );
        assert!(out.metrics.tracked_events > 0);
        let report = collector.report();
        assert!(report.received_batches > 0, "stream actually flowed");
        let (ground, _) = provio::merge_directory(&cluster.fs, "/h5bench/provio");
        assert_eq!(
            provio_rdf::ntriples::sorted_graph_lines(&collector.graph()),
            provio_rdf::ntriples::sorted_graph_lines(&ground),
            "lossy fabric must not change the converged graph"
        );
    }

    #[test]
    fn shared_file_data_is_complete_after_run() {
        let (cluster, _) = small(4, IoPattern::WriteRead, ProvMode::Off);
        // All timestep datasets exist with the full extent.
        let (s, h5) = cluster.process(999, "check", "verify", VirtualClock::new(), None);
        let f = h5.open_file(FILE, false).unwrap();
        let d = h5.open_dataset(f, "Timestep_0/x").unwrap();
        let info = h5.object_info(d).unwrap();
        assert_eq!(info.dims, Some(vec![4 * (1 << 12)]));
        drop(s);
    }
}
