//! Shared experiment rig: file system + VOL stack + tracker registry.

use provio::{Collector, ProvIoConfig, ProvIoVol, TrackerRegistry};
use provio_hdf5::{NativeVol, VolConnector, VolRegistry, H5};
use provio_hpcfs::{Dispatcher, FileSystem, FsSession, LustreConfig};
use provio_simrt::VirtualClock;
use std::sync::{Arc, Mutex};

/// One simulated "machine": a Lustre-backed file system with a native VOL
/// and a PROV-IO connector stacked on top, plus the pid→tracker registry
/// the tracking layers consult.
pub struct Cluster {
    pub fs: Arc<FileSystem>,
    pub native: Arc<dyn VolConnector>,
    pub provio_vol: Arc<ProvIoVol>,
    pub registry: Arc<TrackerRegistry>,
    pub vols: VolRegistry,
    /// Optional streaming aggregator. When armed (via [`Cluster::stream_to`])
    /// and the config enables `net`, every newly attached tracker gets a
    /// [`provio::NetClient`] so flushed batches stream to the collector live
    /// instead of only landing in per-rank files.
    collector: Mutex<Option<Arc<Collector>>>,
}

impl Cluster {
    pub fn new() -> Self {
        Self::with_lustre(LustreConfig::default())
    }

    pub fn with_lustre(lustre: LustreConfig) -> Self {
        let fs = FileSystem::new(lustre);
        let native: Arc<dyn VolConnector> = Arc::new(NativeVol::new(Arc::clone(&fs)));
        let registry = TrackerRegistry::new();
        let provio_vol = ProvIoVol::new(Arc::clone(&native), Arc::clone(&registry));
        let vols = VolRegistry::new();
        vols.register(Arc::clone(&native));
        vols.register(Arc::clone(&provio_vol) as Arc<dyn VolConnector>);
        Cluster {
            fs,
            native,
            provio_vol,
            registry,
            vols,
            collector: Mutex::new(None),
        }
    }

    /// Arm live streaming: trackers attached after this call (by a config
    /// with `net = true`) send their flushed batches to `collector` over the
    /// simulated interconnect. The rank-local store stays authoritative —
    /// the collector is a live mirror that [`Collector::resync`] can rebuild
    /// from the rank files after a crash.
    pub fn stream_to(&self, collector: Arc<Collector>) {
        *self.collector.lock().unwrap() = Some(collector);
    }

    /// The armed collector, if any.
    pub fn collector(&self) -> Option<Arc<Collector>> {
        self.collector.lock().unwrap().clone()
    }

    /// A process session on this cluster. `tracked` processes attach a
    /// PROV-IO tracker (agents recorded, syscall wrapper hooked) and their
    /// HDF5 calls route through the provenance connector; untracked
    /// processes use the native connector directly.
    pub fn process(
        &self,
        pid: u32,
        user: &str,
        program: &str,
        clock: VirtualClock,
        provio_cfg: Option<&Arc<ProvIoConfig>>,
    ) -> (Arc<FsSession>, H5) {
        let dispatcher = Dispatcher::new();
        let session = Arc::new(FsSession::new(
            Arc::clone(&self.fs),
            pid,
            user,
            program,
            clock.clone(),
            dispatcher,
        ));
        let vol: Arc<dyn VolConnector> = match provio_cfg {
            Some(cfg) => {
                if self.registry.get(pid).is_none() {
                    provio::ProvIoApi::attach(
                        Arc::clone(cfg),
                        Arc::clone(&self.fs),
                        &session,
                        &self.registry,
                    );
                    if cfg.net {
                        if let (Some(collector), Some(tracker)) =
                            (self.collector(), self.registry.get(pid))
                        {
                            tracker.attach_net(collector.client(pid, clock, cfg.as_ref()));
                        }
                    }
                } else {
                    // The pid's tracker already exists (a later superstep of
                    // the same rank); only hook this session's dispatcher.
                    session.dispatcher().register(Arc::new(provio::PosixWrapper::new(
                        Arc::clone(&self.registry),
                    )));
                }
                Arc::clone(&self.provio_vol) as Arc<dyn VolConnector>
            }
            None => Arc::clone(&self.native),
        };
        let h5 = H5::new(Arc::clone(&session), vol);
        (session, h5)
    }

    /// Total provenance bytes + file count under `dir`.
    pub fn prov_usage(&self, dir: &str) -> (u64, usize) {
        match self.fs.walk_files(dir) {
            Ok(files) => {
                let bytes = files
                    .iter()
                    .filter_map(|p| self.fs.stat(p).ok())
                    .map(|m| m.size)
                    .sum();
                (bytes, files.len())
            }
            Err(_) => (0, 0),
        }
    }
}

impl Default for Cluster {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vol_registry_has_both_connectors() {
        let c = Cluster::new();
        assert_eq!(c.vols.names(), vec!["native", "provio"]);
    }

    #[test]
    fn tracked_process_produces_provenance() {
        let c = Cluster::new();
        let cfg = ProvIoConfig::default().shared();
        let (s, h5) = c.process(1, "alice", "quick", VirtualClock::new(), Some(&cfg));
        let f = h5.create_file("/x.h5").unwrap();
        h5.close_file(f).unwrap();
        s.write_file("/notes.txt", b"hi").unwrap();
        let summaries = c.registry.finish_all();
        assert_eq!(summaries.len(), 1);
        assert!(summaries[0].1.events >= 2, "H5 + POSIX both captured");
        let (bytes, files) = c.prov_usage("/provio");
        assert!(bytes > 0);
        assert_eq!(files, 1);
    }

    #[test]
    fn streamed_process_mirrors_the_store() {
        let c = Cluster::new();
        let collector = Collector::new(
            Arc::clone(&c.fs),
            "/provio",
            provio_simrt::NetPlan::ideal(7),
        );
        c.stream_to(Arc::clone(&collector));
        let cfg = ProvIoConfig::default()
            .with_wal(true, 8)
            .with_net(true, 1_000_000)
            .shared();
        let (s, h5) = c.process(1, "alice", "stream", VirtualClock::new(), Some(&cfg));
        let f = h5.create_file("/x.h5").unwrap();
        h5.close_file(f).unwrap();
        s.write_file("/notes.txt", b"hi").unwrap();
        let summaries = c.registry.finish_all();
        assert!(summaries[0].1.net_sent > 0, "tracker streamed its batches");
        assert_eq!(summaries[0].1.net_unacked, 0, "ideal fabric acks everything");
        let (ground, _) = provio::merge_directory(&c.fs, "/provio");
        assert!(collector.triples() > 0);
        assert_eq!(
            provio_rdf::ntriples::sorted_graph_lines(&collector.graph()),
            provio_rdf::ntriples::sorted_graph_lines(&ground),
            "live stream converged to the post-hoc merge"
        );
    }

    #[test]
    fn streaming_is_inert_without_net_config() {
        let c = Cluster::new();
        let collector = Collector::new(
            Arc::clone(&c.fs),
            "/provio",
            provio_simrt::NetPlan::ideal(7),
        );
        c.stream_to(Arc::clone(&collector));
        // Config has wal but not net: the collector must stay empty.
        let cfg = ProvIoConfig::default().with_wal(true, 8).shared();
        let (_s, h5) = c.process(3, "carol", "quiet-wire", VirtualClock::new(), Some(&cfg));
        let f = h5.create_file("/q.h5").unwrap();
        h5.close_file(f).unwrap();
        let summaries = c.registry.finish_all();
        assert_eq!(summaries[0].1.net_sent, 0);
        assert_eq!(collector.triples(), 0);
    }

    #[test]
    fn untracked_process_is_silent() {
        let c = Cluster::new();
        let (s, h5) = c.process(2, "bob", "quiet", VirtualClock::new(), None);
        let f = h5.create_file("/y.h5").unwrap();
        h5.close_file(f).unwrap();
        s.write_file("/z.txt", b"x").unwrap();
        assert_eq!(c.prov_usage("/provio"), (0, 0));
        assert!(c.registry.finish_all().is_empty());
    }
}
