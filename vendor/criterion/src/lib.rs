#![allow(clippy::all)]
//! Minimal offline substitute for the `criterion` crate.
//!
//! Provides enough of the API for this workspace's benches to compile and
//! run: `Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros. Each
//! benchmark runs a fixed warm-up plus `sample_size` timed batches and
//! prints mean ns/iter — no statistics, plots, or CLI parsing.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(200),
            warm_up_time: Duration::from_millis(50),
        }
    }
}

impl Criterion {
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, self.warm_up_time, self.measurement_time, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_bench(
            &label,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
            f,
        );
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_bench(
            &label,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.warm_up_time,
            self.criterion.measurement_time,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId(p.to_string())
    }

    pub fn new(name: impl Display, p: impl Display) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed += start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    warm_up: Duration,
    measurement: Duration,
    mut f: F,
) {
    // One warm-up pass to fault in code and caches (and to measure a rough
    // per-iteration cost for batching).
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    f(&mut b);
    while warm_start.elapsed() < warm_up {
        b.elapsed = Duration::ZERO;
        f(&mut b);
    }
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let budget = measurement.max(Duration::from_millis(1));
    let iters_per_sample = (budget.as_nanos() / per_iter.as_nanos() / samples.max(1) as u128)
        .clamp(1, u64::MAX as u128) as u64;

    let mut total_iters = 0u64;
    let mut total_time = Duration::ZERO;
    for _ in 0..samples {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total_iters += b.iters;
        total_time += b.elapsed;
    }
    let ns_per_iter = total_time.as_nanos() as f64 / total_iters.max(1) as f64;
    println!("bench {label}: {ns_per_iter:.0} ns/iter ({total_iters} iters)");
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1));
        });
        assert!(ran);
    }

    #[test]
    fn group_bench_with_input() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::from_parameter(4u32), &4u32, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        group.finish();
    }
}
