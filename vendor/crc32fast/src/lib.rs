//! Offline shim of the `crc32fast` crate: IEEE CRC-32 (the zlib/gzip/PNG
//! polynomial, reflected 0xEDB88320) with the slice-by-16 table method.
//!
//! The workspace vendors this so the provenance store's checksummed file
//! format needs no registry access; swap the path dependency for the real
//! crate to get SIMD acceleration back. The API surface matches what the
//! workspace uses: [`hash`] and the streaming [`Hasher`].
//!
//! CRC-32 detects every single-bit error and every error burst up to 32
//! bits, which is exactly the guarantee the store's per-batch frames lean
//! on: a seeded bit-flip anywhere in a framed batch can never verify.

/// Sixteen lookup tables, 256 entries each: `TABLES[0]` is the classic
/// byte-at-a-time table, `TABLES[k]` advances a byte through `k` further
/// zero bytes, letting the hot loop fold sixteen input bytes per iteration
/// (16 KiB of tables — comfortably L1-resident).
static TABLES: [[u32; 256]; 16] = build_tables();

const fn build_tables() -> [[u32; 256]; 16] {
    let mut tables = [[0u32; 256]; 16];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 16 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

fn update(mut crc: u32, mut data: &[u8]) -> u32 {
    // Slice-by-16: fold sixteen input bytes per iteration, the first four
    // combined with the running CRC.
    while data.len() >= 16 {
        let lo = crc ^ u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
        crc = TABLES[15][(lo & 0xFF) as usize]
            ^ TABLES[14][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[13][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[12][((lo >> 24) & 0xFF) as usize]
            ^ TABLES[11][data[4] as usize]
            ^ TABLES[10][data[5] as usize]
            ^ TABLES[9][data[6] as usize]
            ^ TABLES[8][data[7] as usize]
            ^ TABLES[7][data[8] as usize]
            ^ TABLES[6][data[9] as usize]
            ^ TABLES[5][data[10] as usize]
            ^ TABLES[4][data[11] as usize]
            ^ TABLES[3][data[12] as usize]
            ^ TABLES[2][data[13] as usize]
            ^ TABLES[1][data[14] as usize]
            ^ TABLES[0][data[15] as usize];
        data = &data[16..];
    }
    // Slice-by-8 on the 8..16-byte remainder, then byte-at-a-time.
    if data.len() >= 8 {
        let lo = crc ^ u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][((lo >> 24) & 0xFF) as usize]
            ^ TABLES[3][data[4] as usize]
            ^ TABLES[2][data[5] as usize]
            ^ TABLES[1][data[6] as usize]
            ^ TABLES[0][data[7] as usize];
        data = &data[8..];
    }
    for &b in data {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// One-shot CRC-32 of `data`.
pub fn hash(data: &[u8]) -> u32 {
    !update(!0, data)
}

/// Streaming CRC-32, matching `crc32fast::Hasher`.
#[derive(Debug, Clone)]
pub struct Hasher {
    state: u32,
}

impl Hasher {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Hasher { state: !0 }
    }

    /// Resume from a previously finalized checksum.
    pub fn new_with_initial(init: u32) -> Self {
        Hasher { state: !init }
    }

    pub fn update(&mut self, data: &[u8]) {
        self.state = update(self.state, data);
    }

    pub fn finalize(&self) -> u32 {
        !self.state
    }

    pub fn reset(&mut self) {
        self.state = !0;
    }
}

impl Default for Hasher {
    fn default() -> Self {
        Hasher::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published IEEE CRC-32 check values.
        assert_eq!(hash(b""), 0);
        assert_eq!(hash(b"123456789"), 0xCBF4_3926);
        assert_eq!(hash(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
        assert_eq!(hash(&[0u8; 32]), 0x190A_55AD);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..1024u32).map(|i| (i * 7 + 3) as u8).collect();
        for split in [0, 1, 7, 8, 9, 63, 512, 1024] {
            let mut h = Hasher::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), hash(&data), "split at {split}");
        }
    }

    #[test]
    fn every_single_bit_flip_changes_the_checksum() {
        let data = b"provio frame payload: <urn:s> <urn:p> <urn:o> .\n";
        let base = hash(data);
        let mut copy = data.to_vec();
        for byte in 0..copy.len() {
            for bit in 0..8 {
                copy[byte] ^= 1 << bit;
                assert_ne!(hash(&copy), base, "flip at {byte}:{bit} undetected");
                copy[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn reset_and_resume() {
        let mut h = Hasher::new();
        h.update(b"garbage");
        h.reset();
        h.update(b"123456789");
        assert_eq!(h.finalize(), 0xCBF4_3926);
        let first = hash(b"abc");
        let mut resumed = Hasher::new_with_initial(first);
        resumed.update(b"def");
        assert_eq!(resumed.finalize(), hash(b"abcdef"));
    }
}
