#![allow(clippy::all)]
//! Minimal offline substitute for the `bytes` crate.
//!
//! `Bytes` is an `Arc<[u8]>` window: clones and `slice()` are O(1) and share
//! the underlying allocation, which is the property the simulated file
//! content store relies on.

use std::fmt;
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
            start: 0,
            end: 0,
        }
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// O(1) sub-window sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(v);
        let end = data.len();
        Bytes { data, start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::from(v.as_bytes().to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self[..] == &other[..]
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            if (b' '..=b'~').contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_allocation() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(..2);
        assert_eq!(&s2[..], &[2, 3]);
        assert_eq!(Arc::strong_count(&b.data), 3);
    }

    #[test]
    fn empty_and_eq() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from(vec![1, 2]), Bytes::from(&[1u8, 2][..]));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_slice_panics() {
        let b = Bytes::from(vec![1]);
        let _ = b.slice(0..2);
    }
}
