#![allow(clippy::all)]
//! Minimal offline substitute for the `crossbeam` crate.
//!
//! Provides `channel::unbounded` with crossbeam's key property over
//! `std::sync::mpsc`: the receiver is `Clone`, so multiple workers can pull
//! jobs from one queue (MPMC). Backed by a `VecDeque` + `Condvar`.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half; cloneable. Dropping the last sender wakes blocked
    /// receivers so `recv` can report disconnection.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(v) = queue.pop_front() {
                Ok(v)
            } else if self.shared.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_single_thread() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn mpmc_every_item_delivered_once() {
            let (tx, rx) = unbounded::<u64>();
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut sum = 0u64;
                        while let Ok(v) = rx.recv() {
                            sum += v;
                        }
                        sum
                    })
                })
                .collect();
            drop(rx);
            for v in 1..=100u64 {
                tx.send(v).unwrap();
            }
            drop(tx);
            let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
            assert_eq!(total, 5050);
        }
    }
}
