#![allow(clippy::all)]
//! Minimal offline substitute for the `rand` crate.
//!
//! Implements the trait surface this workspace uses (`Rng::gen`,
//! `Rng::gen_range`, `Rng::fill`, `SeedableRng::from_seed`) with a
//! xoshiro256++ generator standing in for `SmallRng`. Deterministic for a
//! given seed, like the real thing; statistical quality is adequate for
//! simulation workloads, not cryptography.

use std::ops::Range;

/// Core source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::gen_from(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }

    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable construction (the subset of rand's trait we need).
pub trait SeedableRng: Sized {
    type Seed;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" distribution.
pub trait Standard: Sized {
    fn gen_from<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn gen_from<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn gen_from<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn gen_from<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn gen_from<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for i64 {
    fn gen_from<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn gen_from<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn gen_from<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types samplable uniformly from a half-open range.
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty gen_range");
                let span = (range.end as u128 - range.start as u128) as u64;
                // Modulo bias is negligible for simulation-sized spans.
                range.start + (rng.next_u64() % span) as $ty
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

impl SampleUniform for i64 {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty gen_range");
        let span = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add((rng.next_u64() % span) as i64)
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty gen_range");
        let unit = f64::gen_from(rng);
        range.start + unit * (range.end - range.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, standing in for rand's `SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                let mut x = 0x9E37_79B9u64;
                for w in &mut s {
                    *w = splitmix64(&mut x);
                }
            }
            SmallRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut x = state;
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_exact_mut(8) {
                chunk.copy_from_slice(&splitmix64(&mut x).to_le_bytes());
            }
            SmallRng::from_seed(seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::from_seed([7; 32]);
        let mut b = SmallRng::from_seed([7; 32]);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = r.gen_range(3..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn fill_covers_tail() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn zero_seed_escapes_fixed_point() {
        let mut r = SmallRng::from_seed([0; 32]);
        assert_ne!(r.next_u64(), 0);
    }
}
