#![allow(clippy::all)]
//! Minimal offline substitute for the `proptest` crate.
//!
//! Implements the strategy combinators and macros this workspace uses:
//! ranges, regex-subset string patterns, tuples, `Just`, `prop_oneof!`,
//! `prop_map`/`prop_flat_map`, `collection::vec`, `any::<T>()` and
//! `sample::Index`. Cases are generated from a seed derived from the test
//! name, so failures reproduce run-to-run. There is no shrinking: a failing
//! case panics with the assertion message directly.

use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

/// Deterministic per-test RNG (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded from the test name and case index only, so every run of a
    /// given binary explores the same inputs.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut rng = TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        };
        // Warm up so nearby seeds decorrelate.
        rng.next_u64();
        rng.next_u64();
        rng
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values of one type.
pub trait Strategy {
    type Value;

    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen_value(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn gen_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.gen_value(rng)).gen_value(rng)
    }
}

/// Always yields a clone of the given value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn gen_value(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(span) as $ty
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_int_range_inclusive_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn gen_value(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as u128 - *self.start() as u128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range (e.g. 0..=u64::MAX).
                    return rng.next_u64() as $ty;
                }
                self.start() + rng.below(span) as $ty
            }
        }
    )*};
}

impl_int_range_inclusive_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<i64> {
    type Value = i64;

    fn gen_value(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(rng.below(span) as i64)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn gen_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// `&str` strategies: a regex subset — sequences of literal chars or `[...]`
/// classes (ranges, `\n`/`\t`/`\r` escapes), each with an optional `{n}` or
/// `{m,n}` repetition.
impl Strategy for &str {
    type Value = String;

    fn gen_value(&self, rng: &mut TestRng) -> String {
        gen_pattern(self, rng)
    }
}

fn class_char(chars: &[char], i: &mut usize) -> char {
    let c = chars[*i];
    *i += 1;
    if c != '\\' {
        return c;
    }
    let esc = chars[*i];
    *i += 1;
    match esc {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

fn gen_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut out = String::new();
    while i < chars.len() {
        // Atom: a character class or a single (possibly escaped) literal.
        let mut items: Vec<(char, char)> = Vec::new();
        if chars[i] == '[' {
            i += 1;
            while i < chars.len() && chars[i] != ']' {
                let lo = class_char(&chars, &mut i);
                if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                    i += 1;
                    let hi = class_char(&chars, &mut i);
                    items.push((lo, hi));
                } else {
                    items.push((lo, lo));
                }
            }
            assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
            i += 1;
        } else {
            let c = class_char(&chars, &mut i);
            items.push((c, c));
        }
        // Repetition: {n} or {m,n}; default exactly once.
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            i += 1;
            let read_num = |i: &mut usize| {
                let mut n = 0usize;
                while chars[*i].is_ascii_digit() {
                    n = n * 10 + (chars[*i] as usize - '0' as usize);
                    *i += 1;
                }
                n
            };
            let m = read_num(&mut i);
            let n = if chars[i] == ',' {
                i += 1;
                read_num(&mut i)
            } else {
                m
            };
            assert_eq!(chars[i], '}', "malformed repetition in {pattern:?}");
            i += 1;
            (m, n)
        } else {
            (1, 1)
        };
        let count = min + rng.below((max - min + 1) as u64) as usize;
        for _ in 0..count {
            let (lo, hi) = items[rng.below(items.len() as u64) as usize];
            let span = hi as u32 - lo as u32 + 1;
            let c = char::from_u32(lo as u32 + rng.below(span as u64) as u32).unwrap_or(lo);
            out.push(c);
        }
    }
    out
}

macro_rules! impl_tuple_strategy {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Weighted choice among same-valued strategies; built by `prop_oneof!`.
pub struct OneOf<T> {
    arms: Vec<(u32, Rc<dyn Fn(&mut TestRng) -> T>)>,
}

impl<T> OneOf<T> {
    pub fn empty() -> Self {
        OneOf { arms: Vec::new() }
    }

    pub fn push<S>(&mut self, weight: u32, strategy: S)
    where
        S: Strategy<Value = T> + 'static,
    {
        self.arms
            .push((weight, Rc::new(move |rng| strategy.gen_value(rng))));
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        let mut pick = rng.below(total);
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weight walk always terminates")
    }
}

/// Types with a canonical strategy, for `any::<T>()`.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod sample {
    use super::{Arbitrary, TestRng};

    /// An index into a collection whose size is only known at use time.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` of `size.start..size.end` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Per-invocation knobs; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };

    /// Namespace alias so `prop::sample::Index` resolves, as in real proptest.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[macro_export]
macro_rules! proptest {
    (@impl ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    $(let $pat = $crate::Strategy::gen_value(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $item:expr),+ $(,)?) => {{
        let mut __oneof = $crate::OneOf::empty();
        $(__oneof.push($weight as u32, $item);)+
        __oneof
    }};
    ($($item:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $item),+]
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_strategy_matches_shape() {
        let mut rng = crate::TestRng::for_case("pattern", 0);
        for _ in 0..200 {
            let s = crate::Strategy::gen_value(&"[a-z][a-z0-9_./-]{0,20}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 21);
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_lowercase(), "bad first char in {s:?}");
            for c in s.chars().skip(1) {
                assert!(
                    c.is_ascii_lowercase() || c.is_ascii_digit() || "_./-".contains(c),
                    "bad char {c:?} in {s:?}"
                );
            }
        }
    }

    #[test]
    fn escapes_and_ranges_in_classes() {
        let mut rng = crate::TestRng::for_case("escapes", 0);
        for _ in 0..200 {
            let s = crate::Strategy::gen_value(&"[ -~\\n\\t]{0,24}", &mut rng);
            for c in s.chars() {
                assert!((' '..='~').contains(&c) || c == '\n' || c == '\t');
            }
        }
    }

    #[test]
    fn oneof_respects_arms() {
        let mut rng = crate::TestRng::for_case("oneof", 0);
        let strat = prop_oneof![3 => 0u64..10, 1 => 100u64..110];
        let mut low = 0;
        let mut high = 0;
        for _ in 0..400 {
            let v = crate::Strategy::gen_value(&strat, &mut rng);
            if v < 10 {
                low += 1;
            } else {
                assert!((100..110).contains(&v));
                high += 1;
            }
        }
        assert!(low > high, "weighted arm should dominate");
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let mut a = crate::TestRng::for_case("same", 3);
        let mut b = crate::TestRng::for_case("same", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("same", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_round_trip(v in crate::collection::vec(any::<u8>(), 0..8), (a, b) in (0u32..5, 5u32..9)) {
            prop_assert!(v.len() < 8);
            prop_assert!(a < b, "a={} b={}", a, b);
            prop_assert_ne!(a, b);
            prop_assert_eq!(a + b, b + a);
        }
    }
}
