//! Offline shim of the `sha2` crate: SHA-256 (FIPS 180-4) with a streaming
//! hasher, plus keyed HMAC-SHA256 (RFC 2104), which the real crate family
//! provides via `hmac`.
//!
//! The workspace vendors this so the provenance trust layer — per-file
//! Merkle roots, signed run manifests, the campaign ledger — needs no
//! registry access; swap the path dependency for the real `sha2`/`hmac`
//! crates to get SIMD acceleration back. The API surface matches what the
//! workspace uses: [`sha256`], the streaming [`Sha256`], [`hmac_sha256`],
//! and [`hex`].
//!
//! SHA-256 gives the collision/second-preimage resistance CRC-32 cannot: a
//! deliberate rewrite that preserves a file's CRC frames still changes its
//! SHA-256-folded Merkle root, and no adversary without the manifest key
//! can re-sign the manifest that anchors those roots.

/// Round constants: first 32 bits of the fractional parts of the cube
/// roots of the first 64 primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash value: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Streaming SHA-256, matching `sha2::Sha256` where it counts.
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    /// Total message bytes consumed (the padding needs the bit length).
    total: u64,
}

impl Sha256 {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0u8; 64],
            buf_len: 0,
            total: 0,
        }
    }

    pub fn update(&mut self, mut data: &[u8]) {
        self.total = self.total.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len < 64 {
                // Everything fit in the buffer; the tail write below must
                // not clobber the partial block.
                return;
            }
            let block = self.buf;
            compress(&mut self.state, &block);
            self.buf_len = 0;
        }
        let mut chunks = data.chunks_exact(64);
        for block in &mut chunks {
            compress(&mut self.state, block.try_into().expect("64-byte chunk"));
        }
        let rest = chunks.remainder();
        self.buf[..rest.len()].copy_from_slice(rest);
        self.buf_len = rest.len();
    }

    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total.wrapping_mul(8);
        self.update(&[0x80]);
        // `update` counts the padding into `total`, but `bit_len` was
        // captured first, so the length word stays correct.
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, word) in w.iter_mut().take(16).enumerate() {
        *word = u32::from_be_bytes([
            block[4 * i],
            block[4 * i + 1],
            block[4 * i + 2],
            block[4 * i + 3],
        ]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Keyed HMAC-SHA256 (RFC 2104): `H((K ^ opad) || H((K ^ ipad) || msg))`.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; 32] {
    let mut k = [0u8; 64];
    if key.len() > 64 {
        k[..32].copy_from_slice(&sha256(key));
    } else {
        k[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ipad: Vec<u8> = k.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(msg);
    let mut outer = Sha256::new();
    let opad: Vec<u8> = k.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner.finalize());
    outer.finalize()
}

/// Lowercase hex rendering of a digest.
pub fn hex(digest: &[u8]) -> String {
    let mut out = String::with_capacity(digest.len() * 2);
    for b in digest {
        out.push(char::from(b"0123456789abcdef"[(b >> 4) as usize]));
        out.push(char::from(b"0123456789abcdef"[(b & 0xF) as usize]));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_known_vectors() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // One million 'a' bytes, fed in uneven chunks.
        let mut h = Sha256::new();
        let block = [b'a'; 997];
        let mut fed = 0usize;
        while fed < 1_000_000 {
            let take = block.len().min(1_000_000 - fed);
            h.update(&block[..take]);
            fed += take;
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_one_shot_at_every_split() {
        let data: Vec<u8> = (0..257u32).map(|i| (i * 31 + 7) as u8).collect();
        let whole = sha256(&data);
        for split in [0, 1, 55, 56, 63, 64, 65, 128, 200, 257] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), whole, "split at {split}");
        }
    }

    #[test]
    fn hmac_rfc4231_vectors() {
        // Test case 1.
        assert_eq!(
            hex(&hmac_sha256(&[0x0b; 20], b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        // Test case 2: short ASCII key.
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
        // Test case 6: key longer than one block (hashed down first).
        assert_eq!(
            hex(&hmac_sha256(
                &[0xaa; 131],
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn any_single_bit_flip_changes_the_digest() {
        let data = b"provio manifest line: file path=/provio/prov_p0.nt root=00";
        let base = sha256(data);
        let mut copy = data.to_vec();
        for byte in 0..copy.len() {
            for bit in 0..8 {
                copy[byte] ^= 1 << bit;
                assert_ne!(sha256(&copy), base, "flip at {byte}:{bit} undetected");
                copy[byte] ^= 1 << bit;
            }
        }
    }
}
