#![allow(clippy::all)]
//! Minimal offline substitute for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's API shape: `lock()`,
//! `read()` and `write()` return guards directly (poisoning is swallowed —
//! a panicked holder does not poison the data for everyone else, matching
//! parking_lot semantics). Only the surface this workspace uses is provided.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            // Option so Condvar::wait can temporarily take the std guard.
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the mutex while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let reacquired = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(reacquired);
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
