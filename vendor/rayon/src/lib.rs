#![allow(clippy::all)]
//! Minimal offline substitute for the `rayon` crate.
//!
//! Supports the `par_iter().enumerate().map(..).collect()` chain this
//! workspace uses for BSP supersteps. Work is split into contiguous chunks
//! across `available_parallelism` scoped threads; results come back in input
//! order, and worker panics are propagated to the caller like rayon does.

use std::any::Any;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Explicit pool-size override (0 = size from `available_parallelism`).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Force subsequent parallel calls to split across `n` worker threads,
/// regardless of `available_parallelism`. On hosts that report one core
/// the default sizing degenerates every `par_iter` to a sequential loop,
/// which starves I/O-bound workloads that would still overlap; callers
/// that know their workload can opt into a real pool. Pass 0 to restore
/// the automatic sizing.
pub fn set_thread_count(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// The pool size the next parallel call would use for `items` work items.
pub fn current_thread_count(items: usize) -> usize {
    thread_count(items)
}

fn thread_count(items: usize) -> usize {
    let forced = THREAD_OVERRIDE.load(Ordering::Relaxed);
    let base = if forced > 0 {
        forced
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    base.min(items).max(1)
}

/// Order-preserving parallel evaluation of `f` over `0..n`.
fn run_indexed<R: Send>(n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let threads = thread_count(n);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let f = &f;
    let mut panic: Option<Box<dyn Any + Send>> = None;
    let mut parts: Vec<Vec<R>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let start = t * chunk;
                    let end = ((t + 1) * chunk).min(n);
                    (start..end).map(f).collect::<Vec<R>>()
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(part) => parts.push(part),
                Err(payload) => panic = Some(payload),
            }
        }
    });
    if let Some(payload) = panic {
        std::panic::resume_unwind(payload);
    }
    parts.into_iter().flatten().collect()
}

pub trait IntoParallelRefIterator<'data> {
    type Item: 'data;
    type Iter;

    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = ParIter<'data, T>;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = ParIter<'data, T>;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { slice: self }
    }
}

pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn enumerate(self) -> ParEnumerate<'a, T> {
        ParEnumerate { slice: self.slice }
    }

    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            slice: self.slice,
            f,
        }
    }
}

pub struct ParEnumerate<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParEnumerate<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParEnumerateMap<'a, T, F>
    where
        F: Fn((usize, &'a T)) -> R + Sync,
        R: Send,
    {
        ParEnumerateMap {
            slice: self.slice,
            f,
        }
    }
}

pub struct ParMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync, F, R> ParMap<'a, T, F>
where
    F: Fn(&'a T) -> R + Sync,
    R: Send,
{
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let f = &self.f;
        run_indexed(self.slice.len(), |i| f(&self.slice[i]))
            .into_iter()
            .collect()
    }
}

pub struct ParEnumerateMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync, F, R> ParEnumerateMap<'a, T, F>
where
    F: Fn((usize, &'a T)) -> R + Sync,
    R: Send,
{
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let f = &self.f;
        run_indexed(self.slice.len(), |i| f((i, &self.slice[i])))
            .into_iter()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn enumerate_map_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().enumerate().map(|(i, v)| i as u64 + v).collect();
        let want: Vec<u64> = (0..1000).map(|v| v * 2).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn map_without_enumerate() {
        let input = vec![1u32, 2, 3];
        let out: Vec<u32> = input.par_iter().map(|v| v * 10).collect();
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn empty_input_is_fine() {
        let input: Vec<u8> = Vec::new();
        let out: Vec<u8> = input.par_iter().map(|v| *v).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn thread_override_beats_available_parallelism() {
        // The override must win in both directions: forcing a pool wider
        // than the host report, and forcing sequential on a wide host.
        crate::set_thread_count(4);
        assert_eq!(crate::current_thread_count(1000), 4);
        crate::set_thread_count(1);
        assert_eq!(crate::current_thread_count(1000), 1);
        crate::set_thread_count(0); // restore automatic sizing
        let auto = crate::current_thread_count(1000);
        assert!(auto >= 1);
        // Work still splits correctly under a forced pool.
        crate::set_thread_count(3);
        let input: Vec<u32> = (0..100).collect();
        let out: Vec<u32> = input.par_iter().map(|v| v + 1).collect();
        assert_eq!(out, (1..=100).collect::<Vec<u32>>());
        crate::set_thread_count(0);
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panics_propagate() {
        let input: Vec<u32> = (0..64).collect();
        let _: Vec<u32> = input
            .par_iter()
            .map(|v| {
                if *v == 63 {
                    panic!("worker boom");
                }
                *v
            })
            .collect();
    }
}
