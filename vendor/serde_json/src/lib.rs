#![allow(clippy::all)]
//! Minimal offline substitute for the `serde_json` crate.
//!
//! Provides a dynamically-typed [`Value`], a strict recursive-descent parser
//! ([`from_str`]), `value[...]` indexing that yields `Null` for missing keys
//! (as real serde_json does), and the scalar comparisons tests lean on
//! (`value == "s"`, `value == 1`, `value == true`). There is no `Serialize`
//! machinery: producers in this workspace hand-build their JSON strings.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Index;

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! impl_eq_number {
    ($($ty:ty),*) => {$(
        impl PartialEq<$ty> for Value {
            fn eq(&self, other: &$ty) -> bool {
                self.as_f64() == Some(*other as f64)
            }
        }
    )*};
}

impl_eq_number!(i32, i64, u32, u64, usize, f64);

#[derive(Debug, Clone)]
pub struct Error {
    message: String,
    position: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for Error {}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> Error {
        Error {
            message: message.to_string(),
            position: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {word}")))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.error("short \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are rare in our data; map
                            // lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.error("bad UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.error("bad UTF-8"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("bad number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.error("bad number"))
    }
}

/// Escape a string for embedding in hand-built JSON (helper for producers).
pub fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = from_str(
            r#"{"workflow":"topreco","cycle":1,"ok":true,"outputs":{"accuracy":"0.85"},"xs":[1,2.5,-3]}"#,
        )
        .unwrap();
        assert_eq!(v["workflow"], "topreco");
        assert_eq!(v["cycle"], 1);
        assert_eq!(v["ok"], true);
        assert_eq!(v["outputs"]["accuracy"], "0.85");
        assert_eq!(v["xs"][1], 2.5);
        assert!(v["missing"].is_null());
        assert!(v["missing"]["deep"].is_null());
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = from_str(r#""a\"b\\c\nA""#).unwrap();
        assert_eq!(v, "a\"b\\c\nA".to_string());
        assert_eq!(escape_str("a\"b\\c\nA"), r#"a\"b\\c\nA"#);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("{\"a\":1} x").is_err());
        assert!(from_str("nul").is_err());
    }
}
