//! DASSA backward data lineage (the paper's flagship use case, §1.1/§6.5).
//!
//! Runs the DASSA pipeline (tdms2h5 → decimate → xcorr_stack) with
//! attribute-granularity tracking on 2 virtual nodes, then answers the
//! domain scientist's question: *where did this data product come from, and
//! who made it?* Writes the Figure-9-style Graphviz rendering to
//! `dassa_lineage.dot`.
//!
//! Run: `cargo run --example dassa_lineage`

use prov_io::prelude::*;
use prov_io::workflows::dassa::{run as dassa, DassaParams};

fn main() {
    let cluster = Cluster::new();
    let out = dassa(
        &cluster,
        &DassaParams {
            n_files: 4,
            nodes: 2,
            file_mib: 64,
            channels: 8,
            datasets: 2,
            seed: 42,
            mode: ProvMode::provio(
                ProvIoConfig::default().with_selector(ClassSelector::dassa_attribute_lineage()),
            ),
        },
    );
    println!(
        "DASSA finished in {} (virtual); {} provenance files, {} bytes\n",
        out.metrics.completion, out.metrics.prov_files, out.metrics.prov_bytes
    );

    let (graph, _) = merge_directory(&cluster.fs, &out.prov_dir);
    let mut engine = ProvQueryEngine::new(graph);
    let added = engine.derive_lineage();
    println!("derived {added} wasDerivedFrom edges from the I/O records\n");

    // The scientist's question, in SPARQL (Table 5, rows 1–3 generalized to
    // a transitive walk with a property path).
    let product = "/dassa/products/decimate_0000.h5";
    let sols = engine
        .sparql(&format!(
            "SELECT ?origin WHERE {{ ?p rdfs:label \"{product}\" . \
               ?p prov:wasDerivedFrom+ ?origin . }}"
        ))
        .unwrap();
    println!("backward lineage of {product}:");
    let focus = engine.entity_by_label(product).expect("tracked product");
    let lineage = engine.backward_lineage(&focus);
    for g in &lineage {
        println!("  ← {}", engine.label_of(g).unwrap_or_default());
    }
    assert_eq!(sols.len(), lineage.len());

    // Who produced it (program → thread → user, Table 5 q7–q9)?
    for prog in engine.programs_of(&focus) {
        let pname = engine.label_of(&prog).unwrap_or_default();
        for th in engine.threads_of(&prog) {
            let tname = engine.label_of(&th).unwrap_or_default();
            for u in engine.users_of(&th) {
                println!(
                    "\nproduced by program '{pname}' on thread '{tname}' for user '{}'",
                    engine.label_of(&u).unwrap_or_default()
                );
            }
        }
    }

    // Figure 9: visualize with the lineage highlighted.
    let dot = prov_io::core::engine::viz::to_dot_lineage(engine.graph(), &focus, &lineage);
    std::fs::write("dassa_lineage.dot", &dot).expect("write dot");
    println!(
        "\nwrote dassa_lineage.dot ({} bytes) — render with `dot -Tsvg`",
        dot.len()
    );
}
