//! Tamper-evident provenance, end to end: a sealed multi-rank run, an
//! adversary who rewrites a committed store file and patches every CRC so
//! the merge still accepts it — and the signed manifest catching the
//! forgery anyway, because the Merkle root it signed cannot be patched
//! without the key.
//!
//! Run with `cargo run --release --example verify_demo`.

use prov_io::prelude::*;

const KEY: &str = "campaign-2026-key";

fn main() {
    // ---- A sealed run ---------------------------------------------------
    // `manifest = true` makes finish_all sign the run directory and chain
    // the manifest into the campaign ledger.
    let cluster = Cluster::new();
    let cfg = ProvIoConfig::from_ini(&format!(
        "[provio]\nformat = ntriples\npolicy = every:2\nasync = false\n\
         [store]\nchecksum_format = true\n\
         manifest = true\nmanifest_key = {KEY}\n"
    ))
    .expect("valid config")
    .shared();
    let world = MpiWorld::new(3);
    let outcomes = world.superstep_named("produce", |ctx| {
        let (_s, h5) = cluster.process(
            900 + ctx.rank,
            "alice",
            "verify-demo",
            ctx.clock().clone(),
            Some(&cfg),
        );
        for i in 0..4 {
            let f = h5
                .create_file(&format!("/out_r{}_{i}.h5", ctx.rank))
                .unwrap();
            h5.close_file(f).unwrap();
        }
    });
    assert!(outcomes.iter().all(|o| o.is_completed()));
    cluster.registry.finish_all();
    let fs = &cluster.fs;
    assert!(fs.exists("/provio/MANIFEST.provio"));
    assert!(fs.exists("/provio/CAMPAIGN.provio"));

    let clean = verify_directory(fs, "/provio", KEY);
    println!("{clean}");
    assert!(clean.is_trusted(), "a clean sealed run verifies");

    // ---- The adversary --------------------------------------------------
    // Replace a whole batch of rank 901's store with forged triples, then
    // recompute the batch CRC and the footer root so every frame-level
    // check still passes. This is exactly what bit rot cannot do — and
    // exactly what the rot-tier checksums cannot see.
    let target = "/provio/prov_p901.nt";
    let affected = fs
        .tamper_at_rest(target, &TamperKind::FileSubstitution, 99)
        .unwrap();
    assert!(affected > 0, "the forgery landed");
    println!("forged {affected} line(s) in {target}, CRCs and root repatched");

    // The merge is CRC-blind to it: the forged triples go straight into
    // the merged graph with no complaint. This is the gap verify closes.
    let (forged_graph, mrep) = merge_directory(fs, "/provio");
    assert!(mrep.corrupt.is_empty() && mrep.quarantined.is_empty());
    let forged_in = forged_graph
        .iter()
        .filter(|t| t.to_string().contains("urn:forged"))
        .count();
    assert!(forged_in > 0);
    println!("merge accepted the forgery: {forged_in} forged triple(s) merged silently");

    // ---- Verification ---------------------------------------------------
    // The manifest signed the original Merkle root; the patched root no
    // longer matches, and nobody without the key can fix that.
    let verdict = verify_directory(fs, "/provio", KEY);
    println!("{verdict}");
    assert!(!verdict.is_trusted());
    assert_eq!(verdict.count(FileVerdict::Tampered), 1, "file-level blast radius");
    assert_eq!(verdict.count(FileVerdict::Damaged), 0, "not rot: every CRC passes");

    // ---- Quarantine and recovery ----------------------------------------
    let renamed = quarantine_tampered(fs, &verdict);
    println!("quarantined: {renamed:?}");
    assert_eq!(renamed, vec![target.to_string()]);
    let (recovered, _) = merge_directory(fs, "/provio");
    assert!(
        !recovered.iter().any(|t| t.to_string().contains("urn:forged")),
        "the quarantined forgery stays out of the merge"
    );
    println!(
        "re-merge without the forgery: {} triples (was {})",
        recovered.len(),
        forged_graph.len()
    );

    // Sticky verdict: the quarantined copy re-verifies Tampered, and a
    // second quarantine pass has nothing left to rename.
    let again = verify_directory(fs, "/provio", KEY);
    assert_eq!(again.count(FileVerdict::Tampered), 1);
    assert!(quarantine_tampered(fs, &again).is_empty());
    println!("re-verify: verdict sticky, quarantine idempotent");

    // Trust joins completeness in the run report.
    let mut report = RunReport::new(3);
    report.record_outcomes(&outcomes);
    report.attach_merge(mrep.files, &mrep);
    report.attach_verify(&again);
    println!("run report: {report}");
    assert!(!report.is_trusted());
}
