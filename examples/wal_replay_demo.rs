//! Write-ahead journal, end to end: a rank whose store commits are all
//! dropped by a failing storage target crashes mid-run, and merge-time
//! journal replay recovers everything it recorded — with the journal off,
//! the same run loses all of it.
//!
//! Run with `cargo run --release --example wal_replay_demo`.

use prov_io::hpcfs::FsError;
use prov_io::prelude::*;

/// One 4-rank run: rank 2 panics in the `reduce` phase, and every store
/// commit of its provenance file is dropped (the journal generations,
/// living beside the store, stay writable). Returns the merged graph size
/// and the run report.
fn run(wal: bool) -> (usize, RunReport) {
    let cluster = Cluster::new();
    let plan = FaultPlan::new(42);
    plan.add_rule(FaultRule::fail(FaultOp::WriteAt, FsError::Io).on_path("prov_p102.ttl.tmp"));
    plan.add_rule(FaultRule::fail(FaultOp::WriteAt, FsError::Io).on_path("prov_p102.ttl.d"));
    cluster.fs.install_faults(plan);

    let cfg = ProvIoConfig::default()
        .with_policy(SerializationPolicy::EveryRecords(1))
        .synchronous()
        .with_retry(RetryPolicy {
            max_attempts: 1,
            backoff_ns: 0,
            ..RetryPolicy::default()
        })
        .with_wal(wal, 8)
        .with_manifest(true)
        .with_manifest_key("wal-demo-key")
        .shared();

    let world = MpiWorld::new(4);
    let mut report = RunReport::new(4);
    for phase in ["ingest", "transform", "reduce"] {
        let outcomes = world.superstep_named(phase, |ctx| {
            if ctx.rank == 2 && phase == "reduce" {
                panic!("ESIMCRASH: node 2 lost power");
            }
            let (_s, h5) = cluster.process(
                100 + ctx.rank,
                "alice",
                "demo",
                ctx.clock().clone(),
                Some(&cfg),
            );
            let f = h5
                .create_file(&format!("/r{}_{phase}.h5", ctx.rank))
                .unwrap();
            h5.close_file(f).unwrap();
        });
        report.record_outcomes(&outcomes);
    }
    // The crashed rank's tracker dies without a flush.
    if let Some(t) = cluster.registry.unregister(102) {
        std::mem::forget(t);
    }
    cluster.registry.finish_all();

    let (graph, mrep) = merge_directory(&cluster.fs, "/provio");
    report.attach_merge(report.surviving_ranks().len(), &mrep);
    // The run was sealed at finish_all: the crashed rank's surviving
    // journal generations are signed too, so replayed provenance is
    // trusted provenance.
    let verdict = verify_directory(&cluster.fs, "/provio", "wal-demo-key");
    assert!(verdict.is_trusted(), "clean run, journals and all: {verdict}");
    report.attach_verify(&verdict);
    let engine = ProvQueryEngine::new(graph);
    let recovered = (0..2)
        .map(|p| {
            let label = format!("/r2_{}.h5", ["ingest", "transform"][p]);
            engine.entity_by_label(&label).is_some()
        })
        .filter(|b| *b)
        .count();
    println!(
        "wal={wal:<5} → {} triples merged, {} replayed from journals, \
         {}/2 of the crashed rank's files recovered",
        report.merged_triples, report.replayed_triples, recovered
    );
    println!("          {report}");
    (recovered, report)
}

fn main() {
    println!("-- journal off: the crashed rank's records die with it --");
    let (lost, off) = run(false);
    assert_eq!(lost, 0, "nothing recoverable without the journal");
    assert_eq!(off.replayed_triples, 0);

    println!("-- journal on: merge replays the journal above the watermark --");
    let (recovered, on) = run(true);
    assert_eq!(recovered, 2, "both pre-crash files recovered from the journal");
    assert!(on.replayed_triples > 0);
    assert_eq!(on.wal_tails_truncated, 0);

    println!("ok: bounded-loss contract held (loss ≤ wal_group records per crashed rank)");
}
