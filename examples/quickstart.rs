//! Quickstart: transparent provenance capture for one process.
//!
//! A "scientist's program" writes an HDF5 file and some POSIX files with no
//! provenance calls anywhere in its code; PROV-IO captures everything at
//! the VOL connector and the syscall wrapper, and the user engine answers
//! questions afterwards.
//!
//! Run: `cargo run --example quickstart`

use prov_io::prelude::*;

fn main() {
    // A simulated HPC machine: Lustre-backed file system, native HDF5 VOL,
    // PROV-IO connector stacked on top.
    let cluster = Cluster::new();

    // Everything PROV-IO needs is one config + one attach at process start.
    let cfg = ProvIoConfig::default()
        .with_workflow_type("Quickstart")
        .shared();
    let (session, h5) = cluster.process(100, "alice", "demo_app", VirtualClock::new(), Some(&cfg));

    // ---- the workflow: plain I/O code, no provenance API in sight -------
    session.mkdir("/data").unwrap();
    session
        .write_file("/data/input.csv", b"t,v\n0,1.5\n1,2.5\n")
        .unwrap();
    let input = session.read_file("/data/input.csv").unwrap();
    println!("read {} input bytes", input.len());

    let f = h5.create_file("/data/out.h5").unwrap();
    let g = h5.create_group(f, "results").unwrap();
    let d = h5
        .write_dataset_full(
            g,
            "series",
            Datatype::Float64,
            &[2],
            &Data::from_f64s(&[1.5, 2.5]),
        )
        .unwrap();
    h5.create_attr(d, "units", Datatype::VarString, b"m/s").unwrap();
    h5.flush(f).unwrap();
    h5.close_dataset(d).unwrap();
    h5.close_group(g).unwrap();
    h5.close_file(f).unwrap();
    // ----------------------------------------------------------------------

    // Finish tracking; each process serialized its own RDF sub-graph.
    for (pid, summary) in cluster.registry.finish_all() {
        println!(
            "pid {pid}: {} events, {} triples, {} bytes at {}",
            summary.events, summary.triples, summary.store_bytes, summary.store_path
        );
    }

    // Merge sub-graphs (GUID-keyed, duplication-free) and query.
    let (graph, report) = merge_directory(&cluster.fs, "/provio");
    println!(
        "merged {} file(s) into {} triples",
        report.files, report.triples
    );

    let engine = ProvQueryEngine::new(graph);

    // What did this workflow touch, per entity class?
    for class in [EntityClass::File, EntityClass::Dataset, EntityClass::Attribute] {
        for (_, label) in engine.entities(class) {
            println!("{:<9} {}", format!("{class:?}"), label);
        }
    }

    // SPARQL: which I/O APIs wrote the dataset?
    let sols = engine
        .sparql(
            "SELECT ?api WHERE { \
               ?d a provio:Dataset ; provio:wasWrittenBy ?api . }",
        )
        .unwrap();
    println!("dataset writers:\n{}", sols.to_table());

    // I/O statistics (the H5bench-style view).
    let stats = IoStats::from_graph(engine.graph(), 1_000_000);
    println!("{}", stats.to_table());

    println!(
        "virtual completion time of the tracked process: {}",
        session.clock().now()
    );
}
