//! H5bench-style I/O statistics and bottleneck analysis (§3.3).
//!
//! Runs the synthetic MPI workload with scenario-2 tracking (I/O API +
//! duration), merges the per-rank sub-graphs, and reports exactly what the
//! paper's scientists ask for: per-API counts, accumulated time cost,
//! operation distribution over time, and the bottleneck class.
//!
//! Run: `cargo run --example io_bottleneck`

use prov_io::prelude::*;
use prov_io::workflows::h5bench::{run as h5bench, H5benchParams, IoPattern};

fn main() {
    let cluster = Cluster::new();
    let out = h5bench(
        &cluster,
        &H5benchParams {
            ranks: 16,
            pattern: IoPattern::WriteOverwriteRead,
            steps: 3,
            particles_per_rank: 1 << 14,
            blocks: 4,
            compute_per_step: SimDuration::from_secs(25),
            seed: 9,
            mode: ProvMode::provio(
                ProvIoConfig::default().with_selector(ClassSelector::h5bench_scenario2()),
            ),
        },
    );
    println!(
        "h5bench ({} ranks, {}): completion {} (virtual), {} tracked events, {} provenance bytes\n",
        16,
        IoPattern::WriteOverwriteRead.name(),
        out.metrics.completion,
        out.metrics.tracked_events,
        out.metrics.prov_bytes
    );

    let (graph, report) = merge_directory(&cluster.fs, &out.prov_dir);
    println!(
        "merged {} per-rank sub-graphs → {} triples\n",
        report.files, report.triples
    );

    // Scenario-1 question: how many of each I/O API ran?
    // Scenario-2 question: where did the time go?
    let stats = IoStats::from_graph(&graph, 5_000_000_000); // 5 s buckets
    println!("{}", stats.to_table());
    if let Some((class, cs)) = stats.bottleneck() {
        println!(
            "bottleneck: {class} ({} ops, {:.3} ms accumulated)\n",
            cs.count,
            cs.total_duration_ns as f64 / 1e6
        );
    }

    // Operation distribution over (virtual) time.
    println!("ops per 5s bucket:");
    for (bucket, n) in &stats.timeline {
        println!("  t={:>4}s  {:>6} ops  {}", bucket * 5, n, "#".repeat((*n as usize / 200).min(60)));
    }

    // Per-API-name counts via SPARQL (what the engine's endpoint does).
    let mut engine = ProvQueryEngine::new(graph);
    let sols = engine
        .sparql(
            "SELECT ?api ?duration WHERE { \
               ?api prov:wasMemberOf prov:Activity ; provio:elapsed ?duration . } \
             ORDER BY DESC(?duration) LIMIT 5",
        )
        .unwrap();
    println!("\nslowest individual API invocations:\n{}", sols.to_table());

    // Aggregate view with the engine's COUNT/GROUP BY extension.
    let counts = engine
        .sparql(
            "SELECT ?class (COUNT(?api) AS ?n) WHERE { ?api a ?class . } \
             GROUP BY ?class ORDER BY DESC(?n)",
        )
        .unwrap();
    println!("node counts by class:\n{}", counts.to_table());

    // Provenance reduction (the database-style optimization of paper §7):
    // collapse lineage-equivalent API invocations into counted summaries.
    let before_triples = engine.graph().len();
    let (acts_before, acts_after) = engine.reduce_activities();
    println!(
        "provenance reduction: {acts_before} activity nodes → {acts_after} \
         ({} → {} triples)",
        before_triples,
        engine.graph().len()
    );
}
