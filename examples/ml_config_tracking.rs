//! Top Reco configuration↔accuracy mapping (§3.1) — including the paper's
//! future-work scenario: finding the best configuration *across multiple
//! runs* of the workflow, because PROV-IO's content-addressed GUIDs let
//! sub-graphs from different executions merge into one graph.
//!
//! Run: `cargo run --example ml_config_tracking`

use prov_io::prelude::*;
use prov_io::workflows::topreco::{run as topreco, TopRecoParams};

fn main() {
    let cluster = Cluster::new();

    // Three executions with different hyperparameter draws, all tracked
    // into run-specific store directories on the same file system.
    let mut outcomes = Vec::new();
    for (run_id, seed) in [(1u32, 11u64), (2, 22), (3, 33)] {
        let out = topreco(
            &cluster,
            &TopRecoParams {
                epochs: 12,
                n_configs: 8,
                n_events: 20_000,
                epoch_compute: SimDuration::from_secs(30),
                seed,
                mode: ProvMode::provio(
                    ProvIoConfig::default().with_selector(ClassSelector::topreco()),
                ),
                run_id,
            },
        );
        println!(
            "run {run_id}: final accuracy {:.4}, provenance {} bytes at {}",
            out.final_accuracy, out.metrics.prov_bytes, out.prov_dir
        );
        outcomes.push((run_id, out));
    }

    // Merge provenance from ALL runs into one graph (the multi-run
    // integration the I/O-centric model enables, paper §8).
    let mut graph = prov_io::rdf::Graph::new();
    for (_, out) in &outcomes {
        let (g, _) = merge_directory(&cluster.fs, &out.prov_dir);
        graph.merge(&g);
    }
    let engine = ProvQueryEngine::new(graph);

    // Table 5 bottom row: version ↔ accuracy mapping, now across runs.
    let sols = engine
        .sparql(
            "SELECT ?configuration ?version ?accuracy WHERE { \
               ?configuration provio:version ?version ; \
                              provio:hasAccuracy ?accuracy . } \
             ORDER BY DESC(?accuracy) LIMIT 8",
        )
        .unwrap();
    println!("\nbest configuration versions across all runs:\n{}", sols.to_table());

    let best = outcomes
        .iter()
        .max_by(|a, b| a.1.final_accuracy.total_cmp(&b.1.final_accuracy))
        .unwrap();
    println!(
        "best run overall: run {} (accuracy {:.4})",
        best.0, best.1.final_accuracy
    );
}
