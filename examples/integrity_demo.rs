//! End-to-end integrity, through the public API: a multi-rank run commits
//! checksummed stores, bit rot lands on the committed files, and the merge
//! salvages what verifies, quarantines what cannot prove its identity, and
//! reports every piece of damage — without ever forging a triple.
//!
//! Run with `cargo run --release --example integrity_demo`.

use prov_io::prelude::*;
use prov_io::simrt::SimTime;

fn main() {
    // ---- A run with the checksummed format switched on ------------------
    let cluster = Cluster::new();
    let cfg = ProvIoConfig::from_ini(
        "[provio]\nformat = ntriples\npolicy = every:2\nasync = false\n\
         [store]\nchecksum_format = true\n\
         manifest = true\nmanifest_key = integrity-demo-key\n",
    )
    .expect("valid config")
    .shared();
    let world = MpiWorld::new(4);
    let outcomes = world.superstep_named("produce", |ctx| {
        let (_s, h5) = cluster.process(
            700 + ctx.rank,
            "alice",
            "integrity-demo",
            ctx.clock().clone(),
            Some(&cfg),
        );
        for i in 0..4 {
            let f = h5
                .create_file(&format!("/out_r{}_{i}.h5", ctx.rank))
                .unwrap();
            h5.close_file(f).unwrap();
        }
    });
    assert!(outcomes.iter().all(|o| o.is_completed()));
    // Rank 3's process dies before its final flush: snapshot + delta
    // segments survive on disk and their chain must verify at merge time.
    if let Some(t) = cluster.registry.unregister(703) {
        std::mem::forget(t);
    }
    cluster.registry.finish_all();

    let files = cluster.fs.walk_files("/provio").unwrap();
    println!("committed store files: {}", files.len());

    // ---- The fault-free merge, for reference ----------------------------
    let (clean_graph, clean) = merge_directory(&cluster.fs, "/provio");
    assert!(clean.corrupt.is_empty() && clean.quarantined.is_empty());
    assert_eq!(clean.chain_breaks, 0);
    println!(
        "clean merge: {} triples from {} files",
        clean_graph.len(),
        clean.files
    );

    // ---- Bit rot --------------------------------------------------------
    // One store zeroes out entirely; one delta segment loses its tail.
    cluster
        .fs
        .corrupt_at_rest("/provio/prov_p701.nt", &CorruptKind::ZeroFill, 7)
        .unwrap();
    let segment = files
        .iter()
        .find(|f| f.contains("prov_p703.nt.d"))
        .expect("the killed rank left delta segments");
    let ino = cluster.fs.lookup(segment).unwrap();
    let size = cluster.fs.file_size(ino).unwrap();
    cluster.fs.truncate_ino(ino, size / 3, SimTime::ZERO).unwrap();
    println!("injected: zero-filled prov_p701.nt, tore {segment}");

    // ---- The merge detects, salvages, quarantines, and accounts ---------
    let (graph, mrep) = merge_directory(&cluster.fs, "/provio");
    println!(
        "damaged merge: {} triples, {} corrupt, {} quarantined, {} chain breaks",
        graph.len(),
        mrep.corrupt.len(),
        mrep.quarantined.len(),
        mrep.chain_breaks
    );
    assert_eq!(mrep.corrupt.len(), 1, "the zeroed store is honest damage");
    assert_eq!(mrep.quarantined.len(), 1, "the torn segment is condemned");
    assert!(mrep.chain_breaks >= 1, "its ordinal leaves a hole");
    assert!(
        cluster.fs.exists(&format!("{segment}.quarantine")),
        "quarantined files are renamed out of the way"
    );
    // Nothing forged: every surviving triple exists in the clean merge.
    for t in graph.iter() {
        assert!(clean_graph.contains(&t), "forged triple: {t}");
    }

    let mut report = RunReport::new(4);
    report.record_outcomes(&outcomes);
    report.attach_merge(clean.files, &mrep);
    println!("run report: {report}");
    assert!(!report.is_complete(), "damage keeps the run incomplete");

    // A second merge changes nothing: quarantine is idempotent.
    let (again, rerun) = merge_directory(&cluster.fs, "/provio");
    assert_eq!(again.len(), graph.len());
    assert!(rerun.quarantined.is_empty());
    println!("re-merge: quarantine held, {} triples unchanged", again.len());

    // ---- Trust: the signed manifest judges what the CRCs already found --
    // The run was sealed at finish_all (manifest = true above). The torn
    // segment re-verifies from its quarantined copy as Damaged — rot costs
    // completeness, not trust — while the zero-filled store no longer even
    // looks framed, which the manifest can only read as replacement.
    let verdict = verify_directory(&cluster.fs, "/provio", "integrity-demo-key");
    println!("{verdict}");
    assert!(verdict.manifest_ok, "the seal itself is intact");
    assert!(verdict.count(FileVerdict::Damaged) >= 1, "torn segment");
    assert!(!verdict.is_trusted());
    report.attach_verify(&verdict);
    println!("run report with trust: {report}");
}
