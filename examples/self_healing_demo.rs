//! Self-healing stores, through the public API: a multi-rank run commits
//! parity-protected artifacts, bit rot lands on a committed store file and
//! on a parity block, and the scrub reconstructs the lost bytes
//! byte-identically from the surviving redundancy — so the sealed manifest
//! still verifies and the merge sees an undamaged run.
//!
//! Run with `cargo run --release --example self_healing_demo`.

use prov_io::prelude::*;
use prov_io::simrt::SimTime;

fn main() {
    // ---- A run with parity protection switched on -----------------------
    let cluster = Cluster::new();
    let cfg = ProvIoConfig::from_ini(
        "[provio]\nformat = ntriples\npolicy = every:2\nasync = false\n\
         [store]\nchecksum_format = true\nparity = true\nparity_group = 4\n\
         manifest = true\nmanifest_key = self-healing-demo-key\n",
    )
    .expect("valid config")
    .shared();
    let world = MpiWorld::new(4);
    let outcomes = world.superstep_named("produce", |ctx| {
        let (_s, h5) = cluster.process(
            800 + ctx.rank,
            "alice",
            "self-healing-demo",
            ctx.clock().clone(),
            Some(&cfg),
        );
        for i in 0..6 {
            let f = h5
                .create_file(&format!("/out_r{}_{i}.h5", ctx.rank))
                .unwrap();
            h5.close_file(f).unwrap();
        }
    });
    assert!(outcomes.iter().all(|o| o.is_completed()));
    cluster.registry.finish_all();

    let files = cluster.fs.walk_files("/provio").unwrap();
    let parity_files: Vec<_> = files.iter().filter(|f| f.ends_with(".par")).collect();
    println!(
        "committed {} store files, {} parity blocks",
        files.len() - parity_files.len(),
        parity_files.len()
    );
    assert!(!parity_files.is_empty(), "parity groups sealed");

    // ---- The fault-free baseline ----------------------------------------
    let (clean_graph, clean) = merge_directory(&cluster.fs, "/provio");
    assert!(clean.corrupt.is_empty() && clean.quarantined.is_empty());
    let vr = verify_directory(&cluster.fs, "/provio", "self-healing-demo-key");
    assert!(vr.manifest_ok && vr.count(FileVerdict::Tampered) == 0);
    println!(
        "clean run: {} triples, manifest verifies, {} files Verified",
        clean_graph.len(),
        vr.count(FileVerdict::Verified)
    );

    // ---- Bit rot on a committed store file and on a parity block --------
    let victim = files
        .iter()
        .find(|f| f.contains("prov_p800.nt"))
        .expect("rank 800 committed a store");
    let ino = cluster.fs.lookup(victim).unwrap();
    let size = cluster.fs.file_size(ino).unwrap();
    let pristine = cluster.fs.read_at(ino, 0, size).unwrap();
    let mid = size / 2;
    cluster.fs.write_at(ino, mid, b"\x00", SimTime::ZERO).unwrap();

    let rotten_par = parity_files
        .iter()
        .find(|f| f.contains("prov_p802"))
        .expect("rank 802 sealed parity");
    let pino = cluster.fs.lookup(rotten_par).unwrap();
    let ptext = cluster
        .fs
        .read_at(pino, 0, cluster.fs.file_size(pino).unwrap())
        .unwrap();
    let ptext = String::from_utf8(ptext.to_vec()).unwrap();
    // Rot a byte of the parity payload itself (not the frame header —
    // structural damage to the frame is quarantine's business, not repair's).
    let data_at = ptext.find("data len=").expect("parity data block");
    let rot_at = (data_at + ptext[data_at..].find('\n').unwrap() + 2) as u64;
    cluster
        .fs
        .write_at(pino, rot_at, b"\x00", SimTime::ZERO)
        .unwrap();
    println!("injected: rotted {victim} and parity block {rotten_par}");

    // The damaged file is repairable, so quarantine must keep its hands off
    // and the verifier must flag it without destroying it.
    let repairable = repairable_paths(&cluster.fs, "/provio");
    assert!(repairable.contains(victim.as_str()));
    let vr = verify_directory(&cluster.fs, "/provio", "self-healing-demo-key");
    assert!(vr.count(FileVerdict::Damaged) > 0, "rot is CRC-visible");
    let quarantined = quarantine_tampered(&cluster.fs, &vr);
    assert!(
        !quarantined.iter().any(|q| q.contains("prov_p800")),
        "repairable damage is left for the scrub, not quarantined"
    );

    // ---- Scrub: reconstruct from parity, regenerate the parity block ----
    let report: ScrubReport = scrub_directory(&cluster.fs, "/provio");
    println!(
        "scrub: {} groups, repaired files {:?}, regenerated parity {:?}",
        report.groups, report.repaired_files, report.repaired_parity
    );
    assert!(report.fully_repaired(), "all damage within tolerance");
    assert!(report.repaired_files.iter().any(|p| p == victim));
    assert!(report.repaired_parity.iter().any(|p| p == *rotten_par));

    // Byte-identical restoration: the same bytes, the same Merkle root,
    // so the sealed manifest verifies again without being re-signed.
    // Repair replaces the file via tmp+rename, so look the path up afresh.
    let ino = cluster.fs.lookup(victim).unwrap();
    let healed = cluster
        .fs
        .read_at(ino, 0, cluster.fs.file_size(ino).unwrap())
        .unwrap();
    assert_eq!(healed, pristine, "reconstruction is byte-identical");
    let vr = verify_directory(&cluster.fs, "/provio", "self-healing-demo-key");
    assert!(vr.manifest_ok && vr.count(FileVerdict::Damaged) == 0);
    assert!(vr.count(FileVerdict::Tampered) == 0);
    let (graph, mrep) = merge_directory(&cluster.fs, "/provio");
    assert!(mrep.corrupt.is_empty() && mrep.quarantined.is_empty());
    assert_eq!(graph.len(), clean_graph.len());
    println!(
        "healed run: byte-identical restore, manifest verifies, {} triples",
        graph.len()
    );

    // A second scrub of the healed directory is a no-op.
    let again = scrub_directory(&cluster.fs, "/provio");
    assert!(again.is_clean(), "scrub is idempotent: {again:?}");
    println!("re-scrub: clean ({} groups healthy)", again.groups);
}
