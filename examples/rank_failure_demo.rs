//! Rank-failure resilience, end to end: a superstep survives an injected
//! rank panic, the breaker rides out a flaky store, and the run report
//! states exactly what was lost.
//!
//! Run with `cargo run --release --example rank_failure_demo`.

use prov_io::hpcfs::FsError;
use prov_io::prelude::*;
use std::sync::Arc;

fn main() {
    // ---- A crashing superstep ------------------------------------------
    let cluster = Cluster::new();
    let cfg = ProvIoConfig::default().shared();
    let world = MpiWorld::new(8);
    let mut report = RunReport::new(8);

    for phase in ["ingest", "transform", "publish"] {
        let outcomes = world.superstep_named(phase, |ctx| {
            if ctx.rank == 3 && phase != "ingest" {
                if phase == "transform" {
                    panic!("ESIMCRASH: node 3 lost power");
                }
                return; // a dead rank stays dead
            }
            let (_s, h5) = cluster.process(
                100 + ctx.rank,
                "alice",
                "demo",
                ctx.clock().clone(),
                Some(&cfg),
            );
            let f = h5
                .create_file(&format!("/r{}_{phase}.h5", ctx.rank))
                .unwrap();
            h5.close_file(f).unwrap();
        });
        let crashed = outcomes.iter().filter(|o| o.is_crashed()).count();
        println!("phase {phase:>9}: {}/8 ranks completed", 8 - crashed);
        report.record_outcomes(&outcomes);
    }

    // Rank 3's process died without flushing.
    if let Some(t) = cluster.registry.unregister(103) {
        std::mem::forget(t);
    }
    cluster.registry.finish_all();
    cluster.registry.finish_all(); // idempotent: second call is a no-op

    let (graph, mrep) = merge_directory(&cluster.fs, "/provio");
    report.attach_merge(report.surviving_ranks().len(), &mrep);
    println!("{report}");
    for c in &report.crashed {
        println!("  crashed: rank {} in {:?} ({})", c.rank, c.phase, c.cause);
    }
    let dr = doctor(&graph);
    println!("doctor: clean={} over {} triples", dr.is_clean(), dr.checked_triples);

    // ---- A breaker episode ---------------------------------------------
    let cluster = Cluster::new();
    let plan = FaultPlan::new(91);
    plan.add_rule(FaultRule::fail(FaultOp::WriteAt, FsError::Io).on_path("prov_p300."));
    cluster.fs.install_faults(Arc::clone(&plan));
    let cfg = ProvIoConfig::default()
        .with_policy(SerializationPolicy::EveryRecords(1))
        .synchronous()
        .with_retry(RetryPolicy {
            max_attempts: 1,
            backoff_ns: 0,
            ..RetryPolicy::default()
        })
        .with_breaker(2, 10_000_000_000)
        .shared();
    let (_s, h5) = cluster.process(300, "alice", "pusher", VirtualClock::new(), Some(&cfg));
    for i in 0..6 {
        let f = h5.create_file(&format!("/burst_{i}.h5")).unwrap();
        h5.close_file(f).unwrap();
    }
    cluster.fs.clear_faults();
    let summaries = cluster.registry.finish_all();
    let s = &summaries.iter().find(|(p, _)| *p == 300).unwrap().1;
    println!(
        "breaker: trips={} skipped={} state={} (injected {} faults)",
        s.breaker_trips,
        s.breaker_skipped,
        s.breaker_state,
        plan.injected()
    );
    let (graph, mrep) = merge_directory(&cluster.fs, "/provio");
    println!(
        "merged {} triples from {} files, {} corrupt",
        graph.len(),
        mrep.files,
        mrep.corrupt.len()
    );

    // ---- A query budget ------------------------------------------------
    let q = "SELECT ?e WHERE { ?e a provio:File . }";
    let starved = ProvQueryEngine::new(graph.clone()).with_budget(2);
    match starved.sparql(q) {
        Err(e) => println!("budget 2: {e}"),
        Ok(sols) => println!("budget 2: unexpectedly returned {} rows", sols.len()),
    }
    let engine = ProvQueryEngine::new(graph);
    println!("unlimited: {} files found", engine.sparql(q).unwrap().len());

    // ---- Config knobs from ini -----------------------------------------
    let ini = ProvIoConfig::from_ini(
        "queue_capacity = 64\noverload_policy = shed\nbreaker_threshold = 3\nquery_budget = 500",
    )
    .unwrap();
    println!(
        "ini: queue={} policy={:?} breaker={} budget={}",
        ini.queue_capacity, ini.overload, ini.breaker_threshold, ini.query_budget
    );
    match ProvIoConfig::from_ini("overload_policy = panic") {
        Err(e) => println!("bad ini rejected: {e}"),
        Ok(_) => println!("bad ini unexpectedly accepted"),
    }
}
