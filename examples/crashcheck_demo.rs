//! Crashcheck, end to end: record the complete syscall trace of an
//! all-knobs commit-protocol workload, enumerate every post-crash disk
//! state (operation prefixes, torn in-flight writes, reordered writes
//! inside barrier-free windows), run the full recovery pipeline over
//! each, and machine-check the recovery invariants — then pick one
//! mid-protocol state apart by hand to show what recovery sees.
//!
//! Run with `cargo run --release --example crashcheck_demo`.

use prov_io::core::crashcheck::{crashcheck, CrashcheckConfig, CRASHCHECK_DIR};
use prov_io::prelude::*;

fn main() {
    // ---- The exploration: every crash state of the default workload ----
    let cfg = CrashcheckConfig::default();
    let (workload, report) = crashcheck(&cfg);
    println!(
        "workload: {} ranks x {} pushes, all durability knobs armed",
        cfg.ranks, cfg.pushes
    );
    println!("{report}");
    assert!(report.ok(), "recovery invariants must hold: {:?}", report.violations);

    // ---- One state under the microscope: crash mid-run, then recover ----
    // Pick the midpoint prefix — the writer died with some records
    // committed, some journaled, some still in memory.
    let states = enumerate_crash_states(&workload.ops, 0);
    let state = states
        .iter()
        .find(|s| s.prefix == workload.ops.len() / 2)
        .copied()
        .expect("midpoint prefix is always enumerated");
    let fs = reconstruct(&workload.ops, &state);
    let out = recover_all(&fs, CRASHCHECK_DIR, cfg.manifest_key.as_deref());
    println!(
        "\nmid-run state ({state}): merged {} triples, {} replayed from the journal,\n\
         scrub clean: {}, quarantined: {}, trusted: {}",
        out.graph.len(),
        out.merge.replayed_triples,
        out.scrub.is_clean(),
        out.merge.quarantined.len() + out.quarantined.len(),
        out.verify.as_ref().is_none_or(|v| v.is_trusted()),
    );

    // Recovery is idempotent: a second pass finds the same world.
    let again = recover_all(&fs, CRASHCHECK_DIR, cfg.manifest_key.as_deref());
    assert_eq!(out.report, again.report, "recovery must be idempotent");
    assert_eq!(out.graph.len(), again.graph.len());
    println!("second recovery pass: identical report — recovery is a fixpoint");
}
