//! Fault-tolerant streaming collection, end to end: four ranks stream
//! their provenance to a live aggregator over a hostile fabric (25%
//! loss + duplication + reordering, one all-ranks partition episode),
//! the aggregator crashes mid-run and resyncs from the rank-durable
//! stores — and the live graph still converges triple-for-triple to the
//! post-hoc `merge_directory` pass.
//!
//! Run with `cargo run --release --example streaming_demo`.

use prov_io::prelude::*;
use prov_io::rdf::ntriples::sorted_graph_lines;
use std::sync::Arc;

fn main() {
    let cluster = Cluster::new();

    // A seeded faulty fabric: every message faces 25% loss, ack loss,
    // duplication, and reordering, plus one partition from t=0.5ms to
    // t=3ms that cuts every rank off the aggregator.
    let plan = NetPlan::hostile(42, 0.25)
        .with_partition(PartitionEpisode::all(500_000, 3_000_000));
    let collector = Collector::new(Arc::clone(&cluster.fs), "/provio", plan);
    cluster.stream_to(Arc::clone(&collector));

    // net requires wal: an ack may only follow the rank-local journal
    // sync, so anything the aggregator acked survives its crash.
    let cfg = ProvIoConfig::default()
        .with_policy(SerializationPolicy::EveryRecords(4))
        .synchronous()
        .with_wal(true, 8)
        .with_net(true, 200_000)
        .shared();

    let world = MpiWorld::new(4);
    let mut report = RunReport::new(4);
    for (pi, phase) in ["ingest", "transform", "reduce", "publish"]
        .iter()
        .enumerate()
    {
        let outcomes = world.superstep_named(phase, |ctx| {
            let (_s, h5) = cluster.process(
                100 + ctx.rank,
                "alice",
                "streamer",
                ctx.clock().clone(),
                Some(&cfg),
            );
            for i in 0..3 {
                let f = h5
                    .create_file(&format!("/r{}_p{pi}_{i}.h5", ctx.rank))
                    .unwrap();
                h5.close_file(f).unwrap();
            }
        });
        report.record_outcomes(&outcomes);
        // The aggregator node dies after the transform barrier...
        if pi == 1 {
            collector.crash();
            println!("[{phase}] aggregator crashed — arrivals refused, ranks buffer and retry");
        }
        // ...and recovers one phase later from the rank-durable stores.
        if pi == 2 {
            let (recovered, _) = collector.resync();
            println!("[{phase}] aggregator resynced: {recovered} triples rebuilt from rank stores");
        }
    }

    let summaries = cluster.registry.finish_all();
    report.attach_summaries(&summaries);
    report.attach_delivery(&collector.report());
    println!("\n{report}");

    // The convergence oracle: live streamed graph == post-hoc merge.
    let (ground, _) = merge_directory(&cluster.fs, "/provio");
    let live = sorted_graph_lines(&collector.graph());
    let post = sorted_graph_lines(&ground);
    assert_eq!(live, post, "live graph diverged from the post-hoc merge");
    assert_eq!(report.net_unacked, 0, "every batch acked after the drain");
    println!(
        "converged: live streamed graph == post-hoc merge ({} triples), \
         zero unacked batches",
        live.len()
    );
}
