//! # PROV-IO — an I/O-centric provenance framework for scientific data on
//! HPC systems (Rust reproduction)
//!
//! This crate is the facade over the full workspace, re-exporting every
//! subsystem of the reproduction of *PROV-IO: An I/O-Centric Provenance
//! Framework for Scientific Data on HPC Systems* (HPDC '22):
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`model`] | `provio-model` | the PROV-IO provenance model (Table 2) |
//! | [`core`] | `provio-core` | tracking, store, merger, user engine |
//! | [`rdf`] | `provio-rdf` | RDF graph + Turtle/N-Triples (Redland substitute) |
//! | [`sparql`] | `provio-sparql` | SPARQL SELECT subset + property paths |
//! | [`hpcfs`] | `provio-hpcfs` | simulated POSIX/Lustre + syscall interposition |
//! | [`hdf5`] | `provio-hdf5` | simulated HDF5 with a Virtual Object Layer |
//! | [`mpi`] | `provio-mpi` | BSP-style simulated MPI runtime |
//! | [`netcdf`] | `provio-netcdf` | NetCDF-4-style API over the VOL (future-work integration) |
//! | [`simrt`] | `provio-simrt` | virtual clocks, cost models, deterministic RNG |
//! | [`provlake`] | `provio-provlake` | the ProvLake comparison baseline |
//! | [`workflows`] | `provio-workflows` | Top Reco, DASSA, H5bench drivers |
//!
//! ## Quickstart
//!
//! Track a process transparently (HDF5 through the stacked VOL connector,
//! POSIX through the syscall wrapper), then merge and query:
//!
//! ```
//! use prov_io::prelude::*;
//!
//! // One simulated machine: Lustre-backed fs + native VOL + PROV-IO stack.
//! let cluster = Cluster::new();
//! let cfg = ProvIoConfig::default().shared();
//! let (session, h5) = cluster.process(7, "alice", "demo", VirtualClock::new(), Some(&cfg));
//!
//! // Plain workflow code — no provenance calls anywhere.
//! let f = h5.create_file("/out.h5").unwrap();
//! let d = h5
//!     .write_dataset_full(f, "x", Datatype::Float64, &[3], &Data::from_f64s(&[1.0, 2.0, 3.0]))
//!     .unwrap();
//! h5.close_dataset(d).unwrap();
//! h5.close_file(f).unwrap();
//! session.write_file("/notes.txt", b"posix side").unwrap();
//!
//! // Finish tracking, merge per-process sub-graphs, query.
//! cluster.registry.finish_all();
//! let (graph, _) = merge_directory(&cluster.fs, "/provio");
//! let engine = ProvQueryEngine::new(graph);
//! let sols = engine
//!     .sparql("SELECT ?d WHERE { ?d a provio:Dataset . }")
//!     .unwrap();
//! assert_eq!(sols.len(), 1);
//! ```

pub use provio as core;
pub use provio_hdf5 as hdf5;
pub use provio_hpcfs as hpcfs;
pub use provio_model as model;
pub use provio_mpi as mpi;
pub use provio_netcdf as netcdf;
pub use provio_provlake as provlake;
pub use provio_rdf as rdf;
pub use provio_simrt as simrt;
pub use provio_sparql as sparql;
pub use provio_workflows as workflows;

/// The names most programs need.
pub mod prelude {
    pub use provio::engine::{to_dot, IoStats};
    pub use provio::{
        crashcheck, doctor, merge_directory, merge_directory_with_threads, quarantine_tampered,
        recover_all, repairable_paths, scrub_directory, verify_directory, BreakerState,
        Collector, CrashcheckConfig, CrashcheckReport, DeliveryReport, DoctorReport, FileCheck,
        FileVerdict, NetClient, NetStats, OverloadPolicy, ProvIoApi, ProvIoConfig, ProvIoVol,
        ProvQueryEngine, ProvenanceStore, RankCrash, RecoveryOutcome, RetryPolicy, RunReport,
        ScrubReport, SerializationPolicy, TrackSummary, TrackerRegistry, VerifyReport,
    };
    pub use provio_hdf5::{Data, Dataspace, Datatype, Hyperslab, H5};
    pub use provio_hpcfs::{
        enumerate_crash_states, reconstruct, CorruptKind, CrashState, CrashVariant, FaultOp,
        FaultPlan, FaultRule, FileSystem, FsSession, LustreConfig, OpTrace, OpenFlags, TamperKind,
    };
    pub use provio_model::{
        ActivityClass, AgentClass, ClassSelector, EntityClass, ExtensibleClass, Relation,
    };
    pub use provio_mpi::{CommModel, MpiWorld, RankOutcome};
    pub use provio_simrt::{NetPlan, PartitionEpisode, SendFate, SimDuration, VirtualClock};
    pub use provio_sparql::Query;
    pub use provio_workflows::{Cluster, ProvMode};
}
